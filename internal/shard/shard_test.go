package shard

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Assignment
		ok   bool
	}{
		{"0/1", Assignment{0, 1}, true},
		{"0/4", Assignment{0, 4}, true},
		{"3/4", Assignment{3, 4}, true},
		{"4/4", Assignment{}, false}, // index out of range
		{"-1/4", Assignment{}, false},
		{"1/0", Assignment{}, false},
		{"1", Assignment{}, false},
		{"a/b", Assignment{}, false},
		{"", Assignment{}, false},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseSpec(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestPartitionCoversEveryTrialExactlyOnce is the partition's core contract:
// for any width n, every trial index is owned by exactly one shard.
func TestPartitionCoversEveryTrialExactlyOnce(t *testing.T) {
	for n := 1; n <= 7; n++ {
		for trial := 0; trial < 50; trial++ {
			owners := 0
			for i := 0; i < n; i++ {
				if (Assignment{Index: i, Count: n}).Owns(trial) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d trial=%d owned by %d shards", n, trial, owners)
			}
		}
	}
}

func TestDirNameRoundTrip(t *testing.T) {
	a := Assignment{Index: 3, Count: 8}
	name := a.DirName()
	if name != "shard-003-of-008" {
		t.Fatalf("DirName = %q", name)
	}
	got, ok := ParseDirName(name)
	if !ok || got != a {
		t.Fatalf("ParseDirName(%q) = %+v, %v", name, got, ok)
	}
	for _, bad := range []string{"shard", "shard-x-of-y", "results", "shard-009-of-008"} {
		if _, ok := ParseDirName(bad); ok {
			t.Errorf("ParseDirName(%q) accepted", bad)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest(Assignment{Index: 1, Count: 2}, 7, "abc123")
	m.Executed = 4
	m.Completed = true
	m.AddFault("resumed", "replayed %d trials", 3)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Assignment() != m.Assignment() || got.Seed != 7 || got.SweepKey != "abc123" ||
		got.Executed != 4 || !got.Completed || len(got.Faults) != 1 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Faults[0].Kind != "resumed" || got.Faults[0].Detail != "replayed 3 trials" {
		t.Fatalf("fault round trip: %+v", got.Faults[0])
	}
}

func TestLoadManifestMissingIsErrNotExist(t *testing.T) {
	_, err := LoadManifest(t.TempDir())
	if !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}

func TestLoadManifestRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(`{"schema":"something-else/v9","index":0,"count":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Fatal("wrong schema accepted")
	}
}
