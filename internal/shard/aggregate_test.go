package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpsguard/internal/telemetry"
)

func snapWith(counters map[string]int64) *telemetry.Snapshot {
	return &telemetry.Snapshot{Counters: counters}
}

func TestAggregatorRollupSumsCounters(t *testing.T) {
	agg := NewAggregator()
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 10, "trials": 4}))
	agg.Ingest("1/2", snapWith(map[string]int64{"lp.solves": 7, "trials": 4, "extra": 1}))
	// Last write wins per shard: a newer snapshot supersedes.
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 12, "trials": 5}))

	r := agg.Rollup()
	if r.Count != 2 {
		t.Fatalf("count = %d", r.Count)
	}
	if r.Fleet["lp.solves"] != 19 || r.Fleet["trials"] != 9 || r.Fleet["extra"] != 1 {
		t.Fatalf("fleet = %v", r.Fleet)
	}
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "extra" {
		t.Fatalf("names = %v", names)
	}
}

func TestAggregatorRollupExcludesStaleShards(t *testing.T) {
	clock := time.Unix(1000, 0)
	agg := NewAggregator()
	agg.SetClock(func() time.Time { return clock })
	agg.SetStaleAfter(time.Minute)

	agg.Ingest("0/2", snapWith(map[string]int64{"trials": 4}))
	clock = clock.Add(90 * time.Second) // shard 0 dies; shard 1 keeps reporting
	agg.Ingest("1/2", snapWith(map[string]int64{"trials": 7}))

	r := agg.Rollup()
	if r.Count != 1 || r.Fleet["trials"] != 7 {
		t.Fatalf("fresh rollup = %+v (stale shard double-counted?)", r)
	}
	if r.StaleCount != 1 || len(r.Stale) != 1 || r.Stale[0] != "0/2" {
		t.Fatalf("stale = %v (count %d)", r.Stale, r.StaleCount)
	}
	if _, ok := r.Shards["0/2"]; ok {
		t.Fatal("stale shard still listed among fresh shards")
	}
	if got := r.AgeSeconds["0/2"]; got != 90 {
		t.Fatalf("age of dead shard = %v, want 90", got)
	}

	// The restarted shard re-ingests under the same ID: fresh again, its
	// new series replaces the dead one's — still counted exactly once.
	agg.Ingest("0/2", snapWith(map[string]int64{"trials": 2}))
	r = agg.Rollup()
	if r.Count != 2 || r.Fleet["trials"] != 9 || r.StaleCount != 0 {
		t.Fatalf("post-restart rollup = %+v", r)
	}
}

func TestAggregatorStalenessDisabled(t *testing.T) {
	clock := time.Unix(1000, 0)
	agg := NewAggregator()
	agg.SetClock(func() time.Time { return clock })
	agg.SetStaleAfter(0)

	agg.Ingest("0/1", snapWith(map[string]int64{"trials": 3}))
	clock = clock.Add(24 * time.Hour)
	if r := agg.Rollup(); r.Count != 1 || r.Fleet["trials"] != 3 {
		t.Fatalf("rollup with staleness off = %+v", r)
	}
}

func TestAggregatorHTTPRoundTrip(t *testing.T) {
	agg := NewAggregator()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	if err := PostSnapshot(srv.URL+"/shards/ingest", "1/2",
		snapWith(map[string]int64{"trials": 8})); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/shards/rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Rollup
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Count != 1 || r.Fleet["trials"] != 8 || r.Shards["1/2"]["trials"] != 8 {
		t.Fatalf("rollup = %+v", r)
	}
}

func TestAggregatorHTTPRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	defer srv.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/shards/ingest", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/rollup", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/ingest", "not json", http.StatusBadRequest},
		{"POST", "/shards/ingest", `{"shard":"","snapshot":null}`, http.StatusBadRequest},
		{"GET", "/shards/nothing", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestPostSnapshotErrorsOnDeadAggregator(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	srv.Close() // dead on arrival
	if err := PostSnapshot(srv.URL+"/shards/ingest", "0/1",
		snapWith(map[string]int64{"x": 1})); err == nil {
		t.Fatal("post to a dead aggregator succeeded")
	}
}
