package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpsguard/internal/telemetry"
)

func snapWith(counters map[string]int64) *telemetry.Snapshot {
	return &telemetry.Snapshot{Counters: counters}
}

func TestAggregatorRollupSumsCounters(t *testing.T) {
	agg := NewAggregator()
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 10, "trials": 4}))
	agg.Ingest("1/2", snapWith(map[string]int64{"lp.solves": 7, "trials": 4, "extra": 1}))
	// Last write wins per shard: a newer snapshot supersedes.
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 12, "trials": 5}))

	r := agg.Rollup()
	if r.Count != 2 {
		t.Fatalf("count = %d", r.Count)
	}
	if r.Fleet["lp.solves"] != 19 || r.Fleet["trials"] != 9 || r.Fleet["extra"] != 1 {
		t.Fatalf("fleet = %v", r.Fleet)
	}
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "extra" {
		t.Fatalf("names = %v", names)
	}
}

func TestAggregatorRollupExcludesStaleShards(t *testing.T) {
	clock := time.Unix(1000, 0)
	agg := NewAggregator()
	agg.SetClock(func() time.Time { return clock })
	agg.SetStaleAfter(time.Minute)

	agg.Ingest("0/2", snapWith(map[string]int64{"trials": 4}))
	clock = clock.Add(90 * time.Second) // shard 0 dies; shard 1 keeps reporting
	agg.Ingest("1/2", snapWith(map[string]int64{"trials": 7}))

	r := agg.Rollup()
	if r.Count != 1 || r.Fleet["trials"] != 7 {
		t.Fatalf("fresh rollup = %+v (stale shard double-counted?)", r)
	}
	if r.StaleCount != 1 || len(r.Stale) != 1 || r.Stale[0] != "0/2" {
		t.Fatalf("stale = %v (count %d)", r.Stale, r.StaleCount)
	}
	if _, ok := r.Shards["0/2"]; ok {
		t.Fatal("stale shard still listed among fresh shards")
	}
	if got := r.AgeSeconds["0/2"]; got != 90 {
		t.Fatalf("age of dead shard = %v, want 90", got)
	}

	// The restarted shard re-ingests under the same ID: fresh again, its
	// new series replaces the dead one's — still counted exactly once.
	agg.Ingest("0/2", snapWith(map[string]int64{"trials": 2}))
	r = agg.Rollup()
	if r.Count != 2 || r.Fleet["trials"] != 9 || r.StaleCount != 0 {
		t.Fatalf("post-restart rollup = %+v", r)
	}
}

func TestAggregatorStalenessDisabled(t *testing.T) {
	clock := time.Unix(1000, 0)
	agg := NewAggregator()
	agg.SetClock(func() time.Time { return clock })
	agg.SetStaleAfter(0)

	agg.Ingest("0/1", snapWith(map[string]int64{"trials": 3}))
	clock = clock.Add(24 * time.Hour)
	if r := agg.Rollup(); r.Count != 1 || r.Fleet["trials"] != 3 {
		t.Fatalf("rollup with staleness off = %+v", r)
	}
}

func TestAggregatorHTTPRoundTrip(t *testing.T) {
	agg := NewAggregator()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	if err := PostSnapshot(srv.URL+"/shards/ingest", "1/2",
		snapWith(map[string]int64{"trials": 8})); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/shards/rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Rollup
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Count != 1 || r.Fleet["trials"] != 8 || r.Shards["1/2"]["trials"] != 8 {
		t.Fatalf("rollup = %+v", r)
	}
}

func TestAggregatorHTTPRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	defer srv.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/shards/ingest", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/rollup", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/ingest", "not json", http.StatusBadRequest},
		{"POST", "/shards/ingest", `{"shard":"","snapshot":null}`, http.StatusBadRequest},
		{"GET", "/shards/nothing", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestPostSnapshotErrorsOnDeadAggregator(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	srv.Close() // dead on arrival
	if err := PostSnapshot(srv.URL+"/shards/ingest", "0/1",
		snapWith(map[string]int64{"x": 1})); err == nil {
		t.Fatal("post to a dead aggregator succeeded")
	}
}

func histSnap(edges []int64, obs ...int64) telemetry.HistogramSnapshot {
	r := telemetry.NewRegistry()
	h := r.Histogram("h", edges)
	for _, v := range obs {
		h.Observe(v)
	}
	return r.Snapshot(telemetry.SnapshotOptions{}).Histograms["h"]
}

func TestAggregatorRollupMergesHistograms(t *testing.T) {
	edges := []int64{10, 100}
	agg := NewAggregator()
	agg.Ingest("0/2", &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{"lp.work": histSnap(edges, 5, 50)},
		Timings:    map[string]telemetry.HistogramSnapshot{"lat_ns": histSnap(edges, 7)},
	})
	agg.Ingest("1/2", &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{"lp.work": histSnap(edges, 500)},
		Timings:    map[string]telemetry.HistogramSnapshot{"lat_ns": histSnap(edges, 90)},
	})

	r := agg.Rollup()
	fh := r.FleetHistograms["lp.work"]
	if fh.Count != 3 || fh.Sum != 555 {
		t.Fatalf("fleet lp.work = %+v", fh)
	}
	if want := []int64{1, 1, 1}; len(fh.Buckets) != 3 ||
		fh.Buckets[0] != want[0] || fh.Buckets[1] != want[1] || fh.Buckets[2] != want[2] {
		t.Fatalf("fleet buckets = %v, want %v", fh.Buckets, want)
	}
	if fh.Min != 5 || fh.Max != 500 {
		t.Fatalf("fleet min/max = %d/%d", fh.Min, fh.Max)
	}
	ft := r.FleetTimings["lat_ns"]
	if ft.Count != 2 || ft.Sum != 97 || ft.Min != 7 || ft.Max != 90 {
		t.Fatalf("fleet timing = %+v", ft)
	}
	if len(r.HistogramConflicts) != 0 {
		t.Fatalf("unexpected conflicts: %v", r.HistogramConflicts)
	}
	// The merge must not have aliased an ingested snapshot's buckets.
	agg.Rollup()
	if again := agg.Rollup().FleetHistograms["lp.work"]; again.Buckets[0] != 1 {
		t.Fatalf("repeated rollups mutated ingested state: %+v", again)
	}
}

func TestAggregatorRollupFlagsEdgeConflicts(t *testing.T) {
	agg := NewAggregator()
	agg.Ingest("0/2", &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{"lp.work": histSnap([]int64{10, 100}, 5)},
	})
	agg.Ingest("1/2", &telemetry.Snapshot{
		Counters:   map[string]int64{},
		Histograms: map[string]telemetry.HistogramSnapshot{"lp.work": histSnap([]int64{10, 100, 1000}, 5)},
	})
	r := agg.Rollup()
	if len(r.HistogramConflicts) != 1 || r.HistogramConflicts[0] != "lp.work" {
		t.Fatalf("conflicts = %v, want [lp.work]", r.HistogramConflicts)
	}
	// The first layout seen survives; the conflicting series is dropped,
	// never summed bucket-by-mismatched-bucket.
	if fh := r.FleetHistograms["lp.work"]; fh.Count != 1 {
		t.Fatalf("conflicted merge count = %d, want 1", fh.Count)
	}
}
