package shard

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cpsguard/internal/telemetry"
)

func snapWith(counters map[string]int64) *telemetry.Snapshot {
	return &telemetry.Snapshot{Counters: counters}
}

func TestAggregatorRollupSumsCounters(t *testing.T) {
	agg := NewAggregator()
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 10, "trials": 4}))
	agg.Ingest("1/2", snapWith(map[string]int64{"lp.solves": 7, "trials": 4, "extra": 1}))
	// Last write wins per shard: a newer snapshot supersedes.
	agg.Ingest("0/2", snapWith(map[string]int64{"lp.solves": 12, "trials": 5}))

	r := agg.Rollup()
	if r.Count != 2 {
		t.Fatalf("count = %d", r.Count)
	}
	if r.Fleet["lp.solves"] != 19 || r.Fleet["trials"] != 9 || r.Fleet["extra"] != 1 {
		t.Fatalf("fleet = %v", r.Fleet)
	}
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "extra" {
		t.Fatalf("names = %v", names)
	}
}

func TestAggregatorHTTPRoundTrip(t *testing.T) {
	agg := NewAggregator()
	srv := httptest.NewServer(agg)
	defer srv.Close()

	if err := PostSnapshot(srv.URL+"/shards/ingest", "1/2",
		snapWith(map[string]int64{"trials": 8})); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/shards/rollup")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r Rollup
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Count != 1 || r.Fleet["trials"] != 8 || r.Shards["1/2"]["trials"] != 8 {
		t.Fatalf("rollup = %+v", r)
	}
}

func TestAggregatorHTTPRejectsBadRequests(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	defer srv.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/shards/ingest", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/rollup", "", http.StatusMethodNotAllowed},
		{"POST", "/shards/ingest", "not json", http.StatusBadRequest},
		{"POST", "/shards/ingest", `{"shard":"","snapshot":null}`, http.StatusBadRequest},
		{"GET", "/shards/nothing", "", http.StatusNotFound},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

func TestPostSnapshotErrorsOnDeadAggregator(t *testing.T) {
	srv := httptest.NewServer(NewAggregator())
	srv.Close() // dead on arrival
	if err := PostSnapshot(srv.URL+"/shards/ingest", "0/1",
		snapWith(map[string]int64{"x": 1})); err == nil {
		t.Fatal("post to a dead aggregator succeeded")
	}
}
