// Package cli holds the small shared plumbing of the cmd/ tools: model
// loading (built-in westgrid or a JSON file) and noise-mode parsing.
package cli

import (
	"encoding/json"
	"fmt"
	"os"

	"cpsguard/internal/core"
	"cpsguard/internal/graph"
	"cpsguard/internal/westgrid"
)

// LoadModel returns the model at path, or the built-in westgrid (stressed
// per the flag) when path is empty. The model is validated.
func LoadModel(path string, stress bool) (*graph.Graph, error) {
	if path == "" {
		return westgrid.Build(westgrid.Options{Stress: stress}), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g graph.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// ParseNoiseMode maps the -mode flag value to a core.NoiseMode.
func ParseNoiseMode(s string) (core.NoiseMode, error) {
	switch s {
	case "graph", "":
		return core.GraphNoise, nil
	case "matrix":
		return core.MatrixNoise, nil
	default:
		return 0, fmt.Errorf("unknown noise mode %q (want graph or matrix)", s)
	}
}
