// Checked stdout/stderr output for the cmd/ tools. The result tables and
// JSON models these binaries print ARE their product; a broken pipe or full
// disk that silently drops them is strictly worse than dying loudly, so the
// Must variants terminate the process on write failure.
package cli

import (
	"fmt"
	"io"
	"os"
)

// exit is swapped by tests.
var exit = os.Exit

// fail reports a stdout write failure on stderr (best effort) and exits.
func fail(err error) {
	fmt.Fprintf(os.Stderr, "fatal: write stdout: %v\n", err)
	exit(1)
}

// MustPrintf formats to stdout, terminating the process if the write fails.
func MustPrintf(format string, args ...any) {
	if _, err := fmt.Fprintf(os.Stdout, format, args...); err != nil {
		fail(err)
	}
}

// MustPrintln prints to stdout with a newline, terminating on write failure.
func MustPrintln(args ...any) {
	if _, err := fmt.Fprintln(os.Stdout, args...); err != nil {
		fail(err)
	}
}

// MustWrite copies data to w (stdout, a CSV file, ...), terminating on write
// failure. The writer's name labels the error.
func MustWrite(w io.Writer, name string, data []byte) {
	if _, err := w.Write(data); err != nil {
		fmt.Fprintf(os.Stderr, "fatal: write %s: %v\n", name, err)
		exit(1)
	}
}
