// Debug/telemetry flag plumbing shared by the cmd/ tools: the opt-in pprof +
// metrics HTTP endpoint and the end-of-run metrics snapshot.
package cli

import (
	"log"

	"cpsguard/internal/telemetry"
)

// StartDebug starts telemetry's debug HTTP endpoint (/metrics, /debug/vars,
// /debug/pprof) when addr is non-empty and returns a shutdown func. An empty
// addr is a no-op. The bound address is logged so ":0" is usable.
func StartDebug(addr string) func() {
	if addr == "" {
		return func() {}
	}
	srv, bound, err := telemetry.Default().ServeDebug(addr)
	if err != nil {
		log.Fatalf("debug endpoint: %v", err)
	}
	log.Printf("debug endpoint listening on http://%s (/metrics, /debug/pprof)", bound)
	return func() { srv.Close() }
}

// WriteMetrics dumps the default telemetry registry to path when path is
// non-empty. The default dump holds only the deterministic sections
// (counters, logical-work histograms); withTrace adds the wall-clock timings
// and the retained span window.
func WriteMetrics(path string, withTrace bool) {
	if path == "" {
		return
	}
	opts := telemetry.SnapshotOptions{Timings: withTrace, Spans: withTrace}
	if err := telemetry.Default().WriteSnapshot(path, opts); err != nil {
		log.Fatalf("metrics snapshot: %v", err)
	}
	log.Printf("wrote metrics snapshot %s", path)
}
