// Debug/telemetry flag plumbing shared by the cmd/ tools: the opt-in pprof +
// metrics HTTP endpoint and the end-of-run metrics snapshot.
package cli

import (
	"net/http"
	"os"

	"cpsguard/internal/obs"
	"cpsguard/internal/telemetry"
)

// StartDebug starts telemetry's debug HTTP endpoint (/metrics,
// /metrics/prom, /debug/vars, /debug/pprof) when addr is non-empty and
// returns a shutdown func. An empty
// addr is a no-op. The bound address is logged so ":0" is usable. A nil
// logger is tolerated (events are dropped); a bind failure is fatal — the
// operator asked for an endpoint the process cannot provide.
func StartDebug(addr string, log *obs.Logger) func() {
	_, stop := StartDebugWith(addr, log, nil)
	return stop
}

// StartDebugWith is StartDebug plus extra handlers mounted on the same mux
// (cpsexp's shard aggregation endpoints). It also returns the bound
// address ("" when addr was empty) so a supervisor can hand children the
// ingest URL even when the operator asked for ":0".
func StartDebugWith(addr string, log *obs.Logger, register func(mux *http.ServeMux)) (bound string, stop func()) {
	if addr == "" {
		return "", func() {}
	}
	srv, bound, err := telemetry.Default().ServeDebugWith(addr, register)
	if err != nil {
		log.Error("debug endpoint failed", obs.F("addr", addr), obs.F("err", err))
		os.Exit(1)
	}
	log.Info("debug endpoint listening",
		obs.F("url", "http://"+bound), obs.F("paths", "/metrics /metrics/prom /debug/vars /debug/pprof"))
	return bound, func() { srv.Close() }
}

// WriteMetrics dumps the default telemetry registry to path when path is
// non-empty. The default dump holds only the deterministic sections
// (counters, logical-work histograms); withTrace adds the wall-clock timings
// and the retained span window. A write failure is fatal: the operator asked
// for a snapshot the process cannot deliver.
func WriteMetrics(path string, withTrace bool, log *obs.Logger) {
	if path == "" {
		return
	}
	opts := telemetry.SnapshotOptions{Timings: withTrace, Spans: withTrace}
	if err := telemetry.Default().WriteSnapshot(path, opts); err != nil {
		log.Error("metrics snapshot failed", obs.F("path", path), obs.F("err", err))
		os.Exit(1)
	}
	log.Info("wrote metrics snapshot", obs.F("path", path))
}
