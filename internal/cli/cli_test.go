package cli

import (
	"os"
	"path/filepath"
	"testing"

	"cpsguard/internal/core"
)

func TestLoadModelBuiltin(t *testing.T) {
	g, err := LoadModel("", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) < 80 {
		t.Fatalf("builtin model too small: %d edges", len(g.Edges))
	}
	unstressed, err := LoadModel("", false)
	if err != nil {
		t.Fatal(err)
	}
	if unstressed.TotalDemand() >= g.TotalDemand() {
		t.Fatal("stress flag ignored")
	}
}

func TestLoadModelFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	content := `{
		"name": "file-model",
		"vertices": [
			{"id": "s", "supply": 10, "supply_cost": 1},
			{"id": "d", "demand": 5, "price": 9}
		],
		"edges": [
			{"id": "e", "from": "s", "to": "d", "capacity": 8}
		]
	}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadModel(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "file-model" || len(g.Edges) != 1 {
		t.Fatalf("loaded wrong model: %s", g)
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/nonexistent/file.json", false); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadModel(bad, false); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"vertices":[{"id":"a"}],"edges":[{"id":"e","from":"a","to":"zzz","capacity":1}]}`), 0o644)
	if _, err := LoadModel(invalid, false); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestParseNoiseMode(t *testing.T) {
	if m, err := ParseNoiseMode("graph"); err != nil || m != core.GraphNoise {
		t.Fatalf("graph: %v %v", m, err)
	}
	if m, err := ParseNoiseMode(""); err != nil || m != core.GraphNoise {
		t.Fatalf("default: %v %v", m, err)
	}
	if m, err := ParseNoiseMode("matrix"); err != nil || m != core.MatrixNoise {
		t.Fatalf("matrix: %v %v", m, err)
	}
	if _, err := ParseNoiseMode("bogus"); err == nil {
		t.Fatal("bogus mode accepted")
	}
}
