// Run bundle: the observability spine shared by the cmd/ tools. StartRun
// wires one invocation's structured logger, telemetry tracing, and manifest
// together; Close writes the run directory's artifact set:
//
//	<dir>/events.jsonl   full debug event stream (obs JSONL)
//	<dir>/metrics.json   telemetry snapshot incl. timings + spans
//	<dir>/trace.json     Chrome trace_event export (chrome://tracing, Perfetto)
//	<dir>/manifest.json  seed, flags, artifact digests, telemetry checksum
//
// Every artifact goes through internal/atomicio, and the manifest is written
// last so its digests cover the final bytes of everything else. cmd/cpsreport
// reads this layout back.
package cli

import (
	"fmt"
	"os"
	"path/filepath"

	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
	"cpsguard/internal/telemetry"
)

// RunSpanCapacity is the span-ring size used for observability runs: deep
// enough to keep a quick sweep's full trace tree, still bounded for long
// sweeps (the ring keeps the newest spans; cpsreport reports the drop count).
const RunSpanCapacity = 8192

// RunOptions configures StartRun.
type RunOptions struct {
	// Tool is the binary name ("cpsexp", "cpsgen", ...); it prefixes the
	// run ID and lands in the manifest.
	Tool string
	// Seed is the run's top-level RNG seed (0 when the tool has none).
	Seed int64
	// Dir, when non-empty, is the observability directory: the debug
	// event stream goes there live, and Close writes metrics, trace, and
	// manifest next to it. Empty means log-to-stderr only (no artifacts).
	Dir string
	// StderrLevel is the minimum level for the human stderr sink. The
	// zero value is LevelDebug; tools with a -log-level flag pass the
	// parsed level, others should pass obs.LevelInfo explicitly.
	StderrLevel obs.Level
	// Trace enables span tracing even without a Dir (for -trace with
	// -metrics). A non-empty Dir always enables tracing.
	Trace bool
}

// A Run is one tool invocation's observability bundle.
type Run struct {
	// Log is the run's structured logger (never nil; safe to derive).
	Log *obs.Logger
	// Manifest is the run's reproducibility record; register artifacts on
	// it via AddInput/AddOutput as they are consumed/produced.
	Manifest *manifest.Manifest
	// Dir echoes RunOptions.Dir.
	Dir string

	events *os.File
}

// StartRun opens the observability bundle for one invocation. It never
// fails the tool: if the events file cannot be opened, the run degrades to
// stderr-only logging and records the failure as a manifest note.
func StartRun(opts RunOptions) *Run {
	m := manifest.New(opts.Tool, opts.Seed)
	sinks := []obs.Sink{{W: os.Stderr, Format: obs.Text, Min: opts.StderrLevel}}
	r := &Run{Manifest: m, Dir: opts.Dir}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			m.Note("observability dir unavailable: %v", err)
		} else if f, err := os.Create(filepath.Join(opts.Dir, "events.jsonl")); err != nil {
			m.Note("events.jsonl unavailable: %v", err)
		} else {
			r.events = f
			sinks = append(sinks, obs.Sink{W: f, Format: obs.JSONL, Min: obs.LevelDebug})
		}
	}
	telemetry.Default().SetLabel(opts.Tool)
	if opts.Dir != "" || opts.Trace {
		telemetry.Default().EnableTracing(true)
		telemetry.Default().SetSpanCapacity(RunSpanCapacity)
	}
	// A supervising parent (cpsexp -shard-supervise) hands its trace context
	// down through the environment; adopting it makes this process's spans
	// part of the fleet trace, so tracing turns on even without a local
	// artifact dir — the parent's merge step collects the spans.
	if tc, ok := telemetry.TraceContextFromEnv(); ok {
		telemetry.Default().SetTraceContext(tc)
		telemetry.Default().EnableTracing(true)
		telemetry.Default().SetSpanCapacity(RunSpanCapacity)
	}
	r.Log = obs.New(m.RunID, sinks...)
	r.Log.Debug("run started", obs.F("tool", opts.Tool), obs.F("seed", opts.Seed))
	return r
}

// AddInput registers (and digests) an input artifact on the manifest.
func (r *Run) AddInput(path string) {
	if r == nil {
		return
	}
	r.Manifest.AddInput(path)
}

// AddOutput registers (and digests) a fully-written output artifact.
func (r *Run) AddOutput(path string) {
	if r == nil {
		return
	}
	r.Manifest.AddOutput(path)
}

// Close flushes the event stream and, when the run has a directory, writes
// metrics.json, trace.json, and manifest.json. Artifact failures are logged
// and the first is returned; the manifest is still attempted so a partial
// run stays diagnosable.
func (r *Run) Close() error {
	if r == nil {
		return nil
	}
	var firstErr error
	fail := func(what string, err error) {
		r.Log.Error("artifact write failed", obs.F("artifact", what), obs.F("err", err))
		if firstErr == nil {
			firstErr = fmt.Errorf("cli: write %s: %w", what, err)
		}
	}
	if r.Dir != "" {
		reg := telemetry.Default()
		metricsPath := filepath.Join(r.Dir, "metrics.json")
		if err := reg.WriteSnapshot(metricsPath, telemetry.SnapshotOptions{Timings: true, Spans: true}); err != nil {
			fail("metrics.json", err)
		} else {
			r.Manifest.SetTelemetry(metricsPath)
		}
		tracePath := filepath.Join(r.Dir, "trace.json")
		if err := reg.WriteChromeTrace(tracePath); err != nil {
			fail("trace.json", err)
		}
		r.Log.Info("run artifacts written", obs.F("dir", r.Dir))
	}
	// The events file is flushed before the manifest digests nothing of it
	// (events.jsonl is intentionally not digested: the manifest itself is
	// the last event's witness), but close errors still surface.
	if r.events != nil {
		if err := r.events.Close(); err != nil {
			fail("events.jsonl", err)
		}
		r.events = nil
	}
	if r.Dir != "" {
		if err := r.Manifest.Write(r.Dir); err != nil {
			fail("manifest.json", err)
		}
	}
	return firstErr
}
