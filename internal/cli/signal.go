// Signal/timeout plumbing shared by the cmd/ tools: every binary gets a
// -timeout flag and SIGINT/SIGTERM handling, cancelling in-flight solves
// through the context threaded into the solver layers.
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// SignalContext returns a context cancelled by SIGINT/SIGTERM and, when
// timeout > 0, by the deadline. Call stop when the work is done to restore
// default signal handling (a second signal then kills the process).
func SignalContext(timeout time.Duration) (ctx context.Context, stop context.CancelFunc) {
	ctx, sigStop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, sigStop
	}
	ctx, tCancel := context.WithTimeout(ctx, timeout)
	return ctx, func() { tCancel(); sigStop() }
}

// ExitCanceled reports cancellation to stderr — with the partial-progress
// line when non-empty — and exits non-zero (130, the conventional
// interrupted-by-signal code). It only returns when err is unrelated to
// ctx's cancellation.
func ExitCanceled(ctx context.Context, err error, partial string) {
	if ctx.Err() == nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return
	}
	cause := ctx.Err()
	if cause == nil {
		cause = err
	}
	what := "interrupted"
	if errors.Is(cause, context.DeadlineExceeded) {
		what = "timed out"
	}
	fmt.Fprintf(os.Stderr, "%s\n", what)
	if partial != "" {
		fmt.Fprintf(os.Stderr, "partial progress: %s\n", partial)
	}
	os.Exit(130)
}
