package obs

import (
	"math"
	"strings"
	"testing"
)

// Error-path and boundary coverage for the JSONL wire format: what happens
// on the read side when a line is torn mid-write, and how non-finite floats
// survive the trip (encoding/json would reject them outright).

func TestDecodeJSONLErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"torn line":      `{"level":"info","msg":"half`,
		"not an object":  `[1,2,3]`,
		"bare value":     `42`,
		"wrong envelope": `{"level":7,"msg":"x"}`,
		"trailing junk":  `{"level":"info","msg":"x"}{"level":"info"}`,
	}
	for name, line := range cases {
		if _, err := DecodeJSONL([]byte(line)); err == nil {
			t.Errorf("%s: DecodeJSONL accepted %q", name, line)
		}
	}
}

func TestDecodeJSONLTruncatedEncoderOutput(t *testing.T) {
	ev := Event{Level: LevelInfo, Msg: "trial done", Stage: "fig5",
		Fields: []Field{F("profit", 12.5), F("attempt", 3)}}
	line := ev.AppendJSONL(nil)
	if _, err := DecodeJSONL(line[:len(line)-1]); err != nil {
		t.Fatalf("intact line (sans newline) rejected: %v", err)
	}
	// Every strict prefix — a crash mid-append — must error.
	for cut := 1; cut < len(line)-1; cut += 7 {
		if _, err := DecodeJSONL(line[:cut]); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted: %q", cut, len(line), line[:cut])
		}
	}
}

func TestJSONLNonFiniteFloatsRoundTrip(t *testing.T) {
	ev := Event{Level: LevelWarn, Msg: "degenerate solve",
		Fields: []Field{
			F("nan", math.NaN()),
			F("pinf", math.Inf(1)),
			F("ninf", math.Inf(-1)),
			F("nan32", float32(math.NaN())),
			F("finite", 1.5),
		}}
	line := ev.AppendJSONL(nil)
	dec, err := DecodeJSONL(line[:len(line)-1])
	if err != nil {
		t.Fatalf("non-finite floats broke the wire format: %v\n%s", err, line)
	}
	// Non-finite values arrive as their quoted spellings — still one value
	// per key, never an invalid JSON token.
	if dec.Extra["nan"] != "NaN" {
		t.Errorf("nan = %v (%T), want the string NaN", dec.Extra["nan"], dec.Extra["nan"])
	}
	if dec.Extra["pinf"] != "+Inf" {
		t.Errorf("pinf = %v, want the string +Inf", dec.Extra["pinf"])
	}
	if dec.Extra["ninf"] != "-Inf" {
		t.Errorf("ninf = %v, want the string -Inf", dec.Extra["ninf"])
	}
	if dec.Extra["nan32"] != "NaN" {
		t.Errorf("nan32 = %v, want the string NaN", dec.Extra["nan32"])
	}
	if f, ok := dec.Extra["finite"].(float64); !ok || f != 1.5 {
		t.Errorf("finite = %v, want 1.5", dec.Extra["finite"])
	}
	// The Text encoding spells them bare; it has no JSON validity to lose.
	text := string(ev.AppendText(nil))
	for _, want := range []string{"nan=NaN", "pinf=+Inf", "ninf=-Inf"} {
		if !strings.Contains(text, want) {
			t.Errorf("text encoding missing %q: %s", want, text)
		}
	}
}
