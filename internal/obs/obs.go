// Package obs is the run-centric structured event log: every binary and
// long-running package in this repository reports its progress, warnings,
// and failures as leveled events instead of freeform stderr prints, so a
// run's story is machine-parseable after the fact.
//
// Events carry three identity coordinates — the run ID (one per process
// invocation, recorded in the run manifest), the experiment stage ("fig5",
// "fig5 n=4 σ=0.2"), and the trial ID — plus ordered key=value fields.
// Loggers are cheap immutable views over a shared core: WithStage/WithTrial
// derive child loggers that stamp those coordinates on every event, mirroring
// how telemetry spans thread through context.Context.
//
// Two sink formats exist: Text (key=value lines for humans on stderr) and
// JSONL (one JSON object per line for cpsreport and jq). A logger fans each
// event out to every sink at or above the sink's own threshold, so a binary
// can keep terse human output on stderr while streaming a complete Debug
// feed to its observability directory.
//
// Determinism contract: encoding never iterates a map (fields are ordered
// slices), timestamps come from an injectable clock, and float formatting
// uses strconv's shortest round-trip form — so a seeded single-worker run
// with a fixed clock produces byte-identical logs, and any seeded run
// produces the same *set* of events (order varies only with worker
// interleaving). A nil *Logger is valid everywhere and drops events, so
// instrumented packages never branch on "is logging on".
package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Level is an event severity. Sinks drop events below their threshold.
type Level int8

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in encodings.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ParseLevel maps a level name ("debug", "info", "warn", "error") to its
// Level, for -log-level style flags.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown level %q (want debug, info, warn, or error)", s)
	}
}

// Format selects a sink's wire encoding.
type Format int8

const (
	// Text is one `ts=... level=... msg="..." k=v` line per event.
	Text Format = iota
	// JSONL is one JSON object per line with fixed key order:
	// ts, level, run, stage, trial, msg, then the fields in call order.
	JSONL
)

// A Field is one ordered key/value pair attached to an event. Values are
// encoded with strconv (numbers, bools) or quoted strings; everything else
// goes through fmt.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// A Sink is one destination for encoded events.
type Sink struct {
	// W receives one encoded line (including trailing newline) per event.
	W io.Writer
	// Format selects the encoding.
	Format Format
	// Min drops events below this level (zero value: Debug, i.e. keep
	// everything).
	Min Level
}

// Event is one structured log record, as handed to encoders. Exported so
// tests and the cpsreport analyzer can share the encoding.
type Event struct {
	// Time is the event instant on the logger's clock; the zero time
	// omits the ts key entirely (used by tests that want clock-free
	// byte-stable output).
	Time time.Time
	// Level is the severity.
	Level Level
	// Run, Stage, Trial are the identity coordinates (empty ones are
	// omitted from encodings).
	Run   string
	Stage string
	Trial string
	// Msg is the human-readable event name. Keep it stable and
	// lowercase-short ("wrote csv", "trial failed"): analyzers match on
	// it.
	Msg string
	// Fields are the ordered payload pairs.
	Fields []Field
}

// logCore is the shared mutable state behind a family of derived loggers.
type logCore struct {
	mu    sync.Mutex
	sinks []Sink
	clock func() time.Time
}

// A Logger emits structured events to its sinks. Loggers are immutable
// views: With/WithStage/WithTrial return derived loggers sharing the same
// sinks and clock. A nil *Logger drops everything.
type Logger struct {
	core   *logCore
	run    string
	stage  string
	trial  string
	fields []Field
}

// New builds a logger for one run. Sinks without a writer are dropped.
func New(run string, sinks ...Sink) *Logger {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s.W != nil {
			kept = append(kept, s)
		}
	}
	return &Logger{core: &logCore{sinks: kept, clock: time.Now}, run: run}
}

// SetClock replaces the time source for the whole logger family (nil
// freezes timestamps out of the encoding entirely — every event carries a
// zero time). Tests inject deterministic clocks here.
func (l *Logger) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.core.mu.Lock()
	l.core.clock = now
	l.core.mu.Unlock()
}

// Run returns the logger's run ID ("" for a nil logger).
func (l *Logger) Run() string {
	if l == nil {
		return ""
	}
	return l.run
}

// WithStage returns a derived logger stamping stage on every event.
func (l *Logger) WithStage(stage string) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.stage = stage
	return &d
}

// WithTrial returns a derived logger stamping the trial ID on every event.
func (l *Logger) WithTrial(trial string) *Logger {
	if l == nil {
		return nil
	}
	d := *l
	d.trial = trial
	return &d
}

// With returns a derived logger appending fields to every event.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	d := *l
	d.fields = append(append([]Field(nil), l.fields...), fields...)
	return &d
}

// Enabled reports whether any sink would keep an event at lv. Call sites
// building expensive fields can gate on it; plain call sites need not.
func (l *Logger) Enabled(lv Level) bool {
	if l == nil {
		return false
	}
	l.core.mu.Lock()
	defer l.core.mu.Unlock()
	for _, s := range l.core.sinks {
		if lv >= s.Min {
			return true
		}
	}
	return false
}

// Log emits one event at lv.
func (l *Logger) Log(lv Level, msg string, fields ...Field) {
	if l == nil {
		return
	}
	c := l.core
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := false
	for _, s := range c.sinks {
		if lv >= s.Min {
			keep = true
			break
		}
	}
	if !keep {
		return
	}
	ev := Event{
		Level: lv,
		Run:   l.run,
		Stage: l.stage,
		Trial: l.trial,
		Msg:   msg,
	}
	if c.clock != nil {
		ev.Time = c.clock()
	}
	if len(l.fields) > 0 || len(fields) > 0 {
		ev.Fields = make([]Field, 0, len(l.fields)+len(fields))
		ev.Fields = append(ev.Fields, l.fields...)
		ev.Fields = append(ev.Fields, fields...)
	}
	var text, jsonl []byte // encoded lazily, shared across sinks
	for _, s := range c.sinks {
		if lv < s.Min {
			continue
		}
		var line []byte
		switch s.Format {
		case JSONL:
			if jsonl == nil {
				jsonl = ev.AppendJSONL(nil)
			}
			line = jsonl
		default:
			if text == nil {
				text = ev.AppendText(nil)
			}
			line = text
		}
		s.W.Write(line) // best-effort: logging must never fail the run
	}
}

// Debug emits a Debug-level event.
func (l *Logger) Debug(msg string, fields ...Field) { l.Log(LevelDebug, msg, fields...) }

// Info emits an Info-level event.
func (l *Logger) Info(msg string, fields ...Field) { l.Log(LevelInfo, msg, fields...) }

// Warn emits a Warn-level event.
func (l *Logger) Warn(msg string, fields ...Field) { l.Log(LevelWarn, msg, fields...) }

// Error emits an Error-level event.
func (l *Logger) Error(msg string, fields ...Field) { l.Log(LevelError, msg, fields...) }
