// Event encodings. Both formats emit keys in a fixed order (ts, level, run,
// stage, trial, msg, then payload fields in call order) and never iterate a
// map, so a fixed-clock run encodes byte-identically. Values go through
// strconv: integers and bools verbatim, floats in shortest round-trip form,
// strings quoted only when they need it (Text) or always (JSONL).
package obs

import (
	"encoding/json"
	"strconv"
	"time"
)

// TimeFormat is the timestamp layout used by both encodings: RFC 3339 with
// microseconds, always UTC, so logs from different hosts collate.
const TimeFormat = "2006-01-02T15:04:05.000000Z07:00"

// AppendText appends the event as one key=value line (with trailing newline)
// and returns the extended buffer.
func (e *Event) AppendText(b []byte) []byte {
	if !e.Time.IsZero() {
		b = append(b, "ts="...)
		b = e.Time.UTC().AppendFormat(b, TimeFormat)
		b = append(b, ' ')
	}
	b = append(b, "level="...)
	b = append(b, e.Level.String()...)
	b = appendTextPair(b, "run", e.Run)
	b = appendTextPair(b, "stage", e.Stage)
	b = appendTextPair(b, "trial", e.Trial)
	b = append(b, " msg="...)
	b = appendTextValue(b, e.Msg)
	for _, f := range e.Fields {
		b = append(b, ' ')
		b = append(b, f.Key...)
		b = append(b, '=')
		b = appendAnyText(b, f.Value)
	}
	return append(b, '\n')
}

// appendTextPair appends ` key=value` when value is non-empty.
func appendTextPair(b []byte, key, value string) []byte {
	if value == "" {
		return b
	}
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, '=')
	return appendTextValue(b, value)
}

// appendTextValue appends s, quoting only when it contains whitespace,
// quotes, or the pair separator.
func appendTextValue(b []byte, s string) []byte {
	if textNeedsQuote(s) {
		return strconv.AppendQuote(b, s)
	}
	return append(b, s...)
}

func textNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c <= ' ', c == '"', c == '=', c == '\\', c >= 0x7f:
			return true
		}
	}
	return false
}

// appendAnyText encodes a field value for the Text format.
func appendAnyText(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...)
	case string:
		return appendTextValue(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	case float32:
		return strconv.AppendFloat(b, float64(x), 'g', -1, 32)
	case time.Duration:
		return appendTextValue(b, x.String())
	case error:
		return appendTextValue(b, x.Error())
	default:
		if j, err := json.Marshal(x); err == nil {
			return appendTextValue(b, string(j))
		}
		return appendTextValue(b, "?")
	}
}

// AppendJSONL appends the event as one JSON object line (with trailing
// newline) and returns the extended buffer. The object is built by hand so
// key order is fixed and payload fields keep their call order.
func (e *Event) AppendJSONL(b []byte) []byte {
	b = append(b, '{')
	first := true
	pair := func(key string) {
		if !first {
			b = append(b, ',')
		}
		first = false
		b = strconv.AppendQuote(b, key)
		b = append(b, ':')
	}
	if !e.Time.IsZero() {
		pair("ts")
		b = strconv.AppendQuote(b, e.Time.UTC().Format(TimeFormat))
	}
	pair("level")
	b = strconv.AppendQuote(b, e.Level.String())
	if e.Run != "" {
		pair("run")
		b = strconv.AppendQuote(b, e.Run)
	}
	if e.Stage != "" {
		pair("stage")
		b = strconv.AppendQuote(b, e.Stage)
	}
	if e.Trial != "" {
		pair("trial")
		b = strconv.AppendQuote(b, e.Trial)
	}
	pair("msg")
	b = strconv.AppendQuote(b, e.Msg)
	for _, f := range e.Fields {
		pair(f.Key)
		b = appendAnyJSON(b, f.Value)
	}
	b = append(b, '}')
	return append(b, '\n')
}

// appendAnyJSON encodes a field value for the JSONL format.
func appendAnyJSON(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, "null"...)
	case string:
		return strconv.AppendQuote(b, x)
	case bool:
		return strconv.AppendBool(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case float64:
		return appendJSONFloat(b, x)
	case float32:
		return appendJSONFloat(b, float64(x))
	case time.Duration:
		return strconv.AppendQuote(b, x.String())
	case error:
		return strconv.AppendQuote(b, x.Error())
	default:
		if j, err := json.Marshal(x); err == nil {
			return append(b, j...)
		}
		return strconv.AppendQuote(b, "?")
	}
}

// appendJSONFloat keeps the output valid JSON: NaN and infinities (which
// json.Marshal rejects) become quoted strings.
func appendJSONFloat(b []byte, f float64) []byte {
	if f != f || f > 1.797693134862315708145274237317043567981e308 || f < -1.797693134862315708145274237317043567981e308 {
		return strconv.AppendQuote(b, strconv.FormatFloat(f, 'g', -1, 64))
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

// DecodedEvent is the JSONL wire form as cpsreport reads it back: identity
// coordinates plus the free-form payload. Payload keys that collide with the
// envelope are shadowed by the envelope (the logger never emits such keys).
type DecodedEvent struct {
	TS    string         `json:"ts"`
	Level string         `json:"level"`
	Run   string         `json:"run"`
	Stage string         `json:"stage"`
	Trial string         `json:"trial"`
	Msg   string         `json:"msg"`
	Extra map[string]any `json:"-"`
}

// DecodeJSONL parses one JSONL event line. Unknown keys land in Extra so
// analyzers can reach payload fields without a schema.
func DecodeJSONL(line []byte) (DecodedEvent, error) {
	var ev DecodedEvent
	if err := json.Unmarshal(line, &ev); err != nil {
		return ev, err
	}
	var all map[string]any
	if err := json.Unmarshal(line, &all); err != nil {
		return ev, err
	}
	for _, k := range []string{"ts", "level", "run", "stage", "trial", "msg"} {
		delete(all, k)
	}
	if len(all) > 0 {
		ev.Extra = all
	}
	return ev, nil
}
