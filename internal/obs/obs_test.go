package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock that steps one second per call from a fixed
// origin, so encoded timestamps are byte-stable.
func fixedClock() func() time.Time {
	t := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

func TestTextEncodingDeterministic(t *testing.T) {
	var buf bytes.Buffer
	l := New("r1", Sink{W: &buf, Format: Text})
	l.SetClock(fixedClock())

	l.WithStage("fig5").WithTrial("s7|n=2|t0").Info("trial done",
		F("work", int64(42)), F("ok", true), F("load", 0.25),
		F("note", "has spaces"), F("err", errors.New("boom: x")))

	want := `ts=2026-01-02T03:04:06.000000Z level=info run=r1 stage=fig5 trial="s7|n=2|t0" msg="trial done" work=42 ok=true load=0.25 note="has spaces" err="boom: x"` + "\n"
	if got := buf.String(); got != want {
		t.Fatalf("text line:\n got %q\nwant %q", got, want)
	}
}

func TestJSONLEncodingFixedKeyOrder(t *testing.T) {
	var buf bytes.Buffer
	l := New("r1", Sink{W: &buf, Format: JSONL})
	l.SetClock(fixedClock())

	l.WithStage("fig5").Warn("retrying", F("attempt", 2), F("backoff", 150*time.Millisecond))

	line := buf.String()
	want := `{"ts":"2026-01-02T03:04:06.000000Z","level":"warn","run":"r1","stage":"fig5","msg":"retrying","attempt":2,"backoff":"150ms"}` + "\n"
	if line != want {
		t.Fatalf("jsonl line:\n got %q\nwant %q", line, want)
	}
	// And it is real JSON that round-trips through the decoder.
	ev, err := DecodeJSONL([]byte(line))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Level != "warn" || ev.Run != "r1" || ev.Stage != "fig5" || ev.Msg != "retrying" {
		t.Fatalf("decoded = %+v", ev)
	}
	if ev.Extra["attempt"].(float64) != 2 {
		t.Fatalf("extra = %v", ev.Extra)
	}
}

func TestSinkLevelsAndFanOut(t *testing.T) {
	var human, machine bytes.Buffer
	l := New("r",
		Sink{W: &human, Format: Text, Min: LevelWarn},
		Sink{W: &machine, Format: JSONL, Min: LevelDebug},
	)
	l.SetClock(nil) // clock-free: zero time omits ts entirely

	l.Debug("pool started", F("workers", 4))
	l.Warn("watchdog flagged", F("trial", "t3"))

	if n := strings.Count(human.String(), "\n"); n != 1 {
		t.Fatalf("human sink lines = %d, want 1 (warn only): %q", n, human.String())
	}
	if n := strings.Count(machine.String(), "\n"); n != 2 {
		t.Fatalf("machine sink lines = %d, want 2: %q", n, machine.String())
	}
	if strings.Contains(machine.String(), `"ts"`) {
		t.Fatalf("nil clock still emitted ts: %q", machine.String())
	}
	if !l.Enabled(LevelDebug) {
		t.Fatal("Enabled(debug) = false with a debug sink attached")
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Info("dropped")
	l.SetClock(fixedClock())
	if l.WithStage("x") != nil || l.WithTrial("y") != nil || l.With(F("k", 1)) != nil {
		t.Fatal("derivations of a nil logger must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
	if l.Run() != "" {
		t.Fatal("nil logger has a run ID")
	}
}

func TestWithFieldsAccumulateWithoutAliasing(t *testing.T) {
	var buf bytes.Buffer
	l := New("r", Sink{W: &buf, Format: Text})
	l.SetClock(nil)

	base := l.With(F("a", 1))
	b1 := base.With(F("b", 2))
	b2 := base.With(F("c", 3)) // must not clobber b1's backing array
	b1.Info("one")
	b2.Info("two")

	got := buf.String()
	if !strings.Contains(got, "msg=one a=1 b=2") || !strings.Contains(got, "msg=two a=1 c=3") {
		t.Fatalf("derived field sets wrong:\n%s", got)
	}
	if strings.Contains(got, "b=2 c=3") || strings.Contains(got, "c=3 b=2") {
		t.Fatalf("sibling deriveds aliased the same array:\n%s", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted junk")
	}
}

func TestJSONLSpecialValues(t *testing.T) {
	var buf bytes.Buffer
	l := New("", Sink{W: &buf, Format: JSONL})
	l.SetClock(nil)

	type pt struct{ X, Y int }
	nan := 0.0
	nan /= nan
	l.Info("vals", F("nan", nan), F("nil", nil), F("obj", pt{1, 2}), F("u", uint64(9)))

	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("special values broke JSON: %v\n%s", err, buf.String())
	}
	if m["nan"] != "NaN" {
		t.Fatalf("nan = %v", m["nan"])
	}
	if _, ok := m["nil"]; !ok {
		t.Fatal("nil value dropped")
	}
	if obj, ok := m["obj"].(map[string]any); !ok || obj["X"].(float64) != 1 {
		t.Fatalf("obj = %v", m["obj"])
	}
}

func TestConcurrentLoggingKeepsLinesWhole(t *testing.T) {
	var buf bytes.Buffer
	l := New("r", Sink{W: &buf, Format: JSONL})
	l.SetClock(nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := l.WithTrial(fmt.Sprintf("t%d", w))
			for i := 0; i < 50; i++ {
				tl.Debug("tick", F("i", i))
			}
		}(w)
	}
	wg.Wait()

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("lines = %d, want 400", len(lines))
	}
	for _, line := range lines {
		if _, err := DecodeJSONL([]byte(line)); err != nil {
			t.Fatalf("torn line %q: %v", line, err)
		}
	}
}
