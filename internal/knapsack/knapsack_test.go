package knapsack

import (
	"math"
	"testing"

	"cpsguard/internal/rng"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func brute(values, weights []float64, budget float64) float64 {
	best := 0.0
	n := len(values)
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= budget && v > best {
			best = v
		}
	}
	return best
}

func bruteMulti(values []float64, weights [][]float64, budgets []float64) float64 {
	best := 0.0
	n := len(values)
	d := len(weights)
	for mask := 0; mask < 1<<n; mask++ {
		v := 0.0
		ok := true
		for dd := 0; dd < d && ok; dd++ {
			w := 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[dd][i]
				}
			}
			if w > budgets[dd] {
				ok = false
			}
		}
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
			}
		}
		if v > best {
			best = v
		}
	}
	return best
}

func TestSolveClassic(t *testing.T) {
	set, val := Solve([]float64{60, 100, 120}, []float64{10, 20, 30}, 50)
	if !approx(val, 220, 1e-9) {
		t.Fatalf("val = %v, want 220", val)
	}
	if len(set) != 2 || set[0] != 1 || set[1] != 2 {
		t.Fatalf("set = %v, want [1 2]", set)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	if set, val := Solve(nil, nil, 10); len(set) != 0 || val != 0 {
		t.Fatal("empty knapsack not empty")
	}
	// Negative/zero values never chosen.
	set, val := Solve([]float64{-5, 0, 3}, []float64{1, 1, 1}, 10)
	if len(set) != 1 || set[0] != 2 || !approx(val, 3, 1e-12) {
		t.Fatalf("set=%v val=%v", set, val)
	}
	// Zero-weight positive item always taken even with zero budget.
	set, val = Solve([]float64{7}, []float64{0}, 0)
	if len(set) != 1 || !approx(val, 7, 1e-12) {
		t.Fatalf("free item skipped: %v %v", set, val)
	}
	// Item heavier than budget skipped.
	set, _ = Solve([]float64{9}, []float64{5}, 4)
	if len(set) != 0 {
		t.Fatal("overweight item chosen")
	}
}

func TestSolveAgainstBrute(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		rs := rng.Derive(31, uint64(trial))
		n := 1 + rs.Intn(12)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = (rs.Float64() - 0.2) * 10 // some negatives
			weights[i] = rs.Float64() * 5
		}
		budget := rs.Float64() * 12
		_, got := Solve(values, weights, budget)
		want := brute(values, weights, budget)
		if !approx(got, want, 1e-9*(1+want)) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestSolvePanicsOnBadInput(t *testing.T) {
	assertPanics(t, func() { Solve([]float64{1}, []float64{1, 2}, 3) })
	assertPanics(t, func() { Solve([]float64{1}, []float64{-1}, 3) })
}

func TestSolveMultiAgainstBrute(t *testing.T) {
	for trial := 0; trial < 150; trial++ {
		rs := rng.Derive(41, uint64(trial))
		n := 1 + rs.Intn(10)
		d := 1 + rs.Intn(3)
		values := make([]float64, n)
		weights := make([][]float64, d)
		budgets := make([]float64, d)
		for i := range values {
			values[i] = (rs.Float64() - 0.2) * 10
		}
		for dd := 0; dd < d; dd++ {
			weights[dd] = make([]float64, n)
			for i := 0; i < n; i++ {
				weights[dd][i] = rs.Float64() * 5
			}
			budgets[dd] = rs.Float64() * 10
		}
		_, got := SolveMulti(values, weights, budgets)
		want := bruteMulti(values, weights, budgets)
		if !approx(got, want, 1e-9*(1+want)) {
			t.Fatalf("trial %d: got %v, want %v", trial, got, want)
		}
	}
}

func TestSolveMultiReducesToSingle(t *testing.T) {
	values := []float64{60, 100, 120}
	weights := [][]float64{{10, 20, 30}}
	set, val := SolveMulti(values, weights, []float64{50})
	if !approx(val, 220, 1e-9) || len(set) != 2 {
		t.Fatalf("multi-as-single: set=%v val=%v", set, val)
	}
}

func TestSolveMultiZeroBudgetDimension(t *testing.T) {
	// Item costless in dim 0 but dim-1 budget is 0 and it weighs there.
	values := []float64{5}
	weights := [][]float64{{0}, {1}}
	set, val := SolveMulti(values, weights, []float64{10, 0})
	if len(set) != 0 || val != 0 {
		t.Fatalf("infeasible item chosen: %v %v", set, val)
	}
}

func TestSolveMultiPanicsOnBadInput(t *testing.T) {
	assertPanics(t, func() { SolveMulti([]float64{1}, [][]float64{{1, 2}}, []float64{1}) })
	assertPanics(t, func() { SolveMulti([]float64{1}, [][]float64{{1}}, []float64{1, 2}) })
	assertPanics(t, func() { SolveMulti([]float64{1}, [][]float64{{-1}}, []float64{1}) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
