// Telemetry instruments for the knapsack layer. Solves and branch-and-bound
// node counts are deterministic per instance, so these counters double as
// cheap regression tripwires: a pruning regression shows up as a node-count
// jump long before it shows up in wall-clock time.
package knapsack

import "cpsguard/internal/telemetry"

var (
	mSolves      = telemetry.NewCounter("knapsack.solves")
	mMultiSolves = telemetry.NewCounter("knapsack.multi_solves")
	mItems       = telemetry.NewCounter("knapsack.items")
	mNodes       = telemetry.NewCounter("knapsack.nodes")
)
