// Package knapsack provides exact 0/1 knapsack solvers used by the defender
// optimizations (Eqs. 12–14 reduce to a one-dimensional knapsack; the
// collaborative variant of Eqs. 15–18 to a multi-dimensional one with one
// budget row per cooperating actor).
//
// Sizes in this domain are tiny (≤ ~100 items, budgets covering ≤ a dozen),
// so both solvers are exact depth-first branch and bound with greedy
// incumbents; Solve additionally uses the classic fractional upper bound.
package knapsack

import (
	"math"
	"sort"
)

// Solve maximizes Σ value[i]·x_i subject to Σ weight[i]·x_i ≤ budget,
// x ∈ {0,1}ⁿ, and returns the chosen indices (sorted) and the optimal value.
// Items with non-positive value are never chosen; negative weights are not
// supported (they panic, as they indicate a modeling bug upstream).
func Solve(values, weights []float64, budget float64) ([]int, float64) {
	n := len(values)
	if len(weights) != n {
		panic("knapsack: mismatched lengths")
	}
	type item struct {
		idx     int
		v, w    float64
		density float64
	}
	items := make([]item, 0, n)
	for i := 0; i < n; i++ {
		if weights[i] < 0 {
			panic("knapsack: negative weight")
		}
		if values[i] <= 0 {
			continue
		}
		if weights[i] == 0 {
			// Free positive-value items are always taken; fold them in
			// afterwards via the zero-weight fast path below.
			items = append(items, item{i, values[i], 0, math.Inf(1)})
			continue
		}
		if weights[i] > budget {
			continue
		}
		items = append(items, item{i, values[i], weights[i], values[i] / weights[i]})
	}
	sort.Slice(items, func(a, b int) bool { return items[a].density > items[b].density })
	mSolves.Inc()
	mItems.Add(int64(len(items)))

	best := 0.0
	var bestSet []int
	var cur []int
	nodes := int64(0)

	// Fractional upper bound from item k with remaining capacity.
	upper := func(k int, cap, val float64) float64 {
		for ; k < len(items); k++ {
			if items[k].w <= cap {
				cap -= items[k].w
				val += items[k].v
			} else {
				return val + items[k].density*cap
			}
		}
		return val
	}

	var dfs func(k int, cap, val float64)
	dfs = func(k int, cap, val float64) {
		nodes++
		if val > best {
			best = val
			bestSet = append(bestSet[:0], cur...)
		}
		if k >= len(items) {
			return
		}
		if upper(k, cap, val) <= best+1e-12 {
			return
		}
		it := items[k]
		if it.w <= cap {
			cur = append(cur, it.idx)
			dfs(k+1, cap-it.w, val+it.v)
			cur = cur[:len(cur)-1]
		}
		dfs(k+1, cap, val)
	}
	dfs(0, budget, 0)
	mNodes.Add(nodes)

	out := append([]int(nil), bestSet...)
	sort.Ints(out)
	return out, best
}

// SolveMulti maximizes Σ value[i]·x_i subject to, for every dimension d,
// Σ weights[d][i]·x_i ≤ budgets[d]. Exact DFS branch and bound with a
// sum-of-remaining-positive-values bound; suitable for the small instances
// arising in collaborative defense. Returns chosen indices (sorted) and the
// optimal value.
func SolveMulti(values []float64, weights [][]float64, budgets []float64) ([]int, float64) {
	n := len(values)
	d := len(weights)
	for _, row := range weights {
		if len(row) != n {
			panic("knapsack: mismatched multi weights")
		}
	}
	if len(budgets) != d {
		panic("knapsack: mismatched budgets")
	}
	// Candidate items: positive value, individually feasible.
	var order []int
	for i := 0; i < n; i++ {
		if values[i] <= 0 {
			continue
		}
		ok := true
		for dd := 0; dd < d; dd++ {
			if weights[dd][i] < 0 {
				panic("knapsack: negative weight")
			}
			if weights[dd][i] > budgets[dd] {
				ok = false
				break
			}
		}
		if ok {
			order = append(order, i)
		}
	}
	// Sort by value / max normalized weight (a reasonable surrogate
	// density for multi-dim).
	sort.Slice(order, func(a, b int) bool {
		return density(values, weights, budgets, order[a]) > density(values, weights, budgets, order[b])
	})
	// Suffix sums of values for bounding.
	suffix := make([]float64, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffix[k] = suffix[k+1] + values[order[k]]
	}
	mMultiSolves.Inc()
	mItems.Add(int64(len(order)))

	best := 0.0
	var bestSet []int
	var cur []int
	remaining := append([]float64(nil), budgets...)
	nodes := int64(0)

	var dfs func(k int, val float64)
	dfs = func(k int, val float64) {
		nodes++
		if val > best {
			best = val
			bestSet = append(bestSet[:0], cur...)
		}
		if k >= len(order) || val+suffix[k] <= best+1e-12 {
			return
		}
		i := order[k]
		fits := true
		for dd := 0; dd < d; dd++ {
			if weights[dd][i] > remaining[dd]+1e-12 {
				fits = false
				break
			}
		}
		if fits {
			for dd := 0; dd < d; dd++ {
				remaining[dd] -= weights[dd][i]
			}
			cur = append(cur, i)
			dfs(k+1, val+values[i])
			cur = cur[:len(cur)-1]
			for dd := 0; dd < d; dd++ {
				remaining[dd] += weights[dd][i]
			}
		}
		dfs(k+1, val)
	}
	dfs(0, 0)
	mNodes.Add(nodes)

	out := append([]int(nil), bestSet...)
	sort.Ints(out)
	return out, best
}

func density(values []float64, weights [][]float64, budgets []float64, i int) float64 {
	maxNorm := 0.0
	for d := range weights {
		if budgets[d] <= 0 {
			if weights[d][i] > 0 {
				return 0
			}
			continue
		}
		norm := weights[d][i] / budgets[d]
		if norm > maxNorm {
			maxNorm = norm
		}
	}
	if maxNorm == 0 {
		return math.Inf(1)
	}
	return values[i] / maxNorm
}
