// Store index: the manifest layer's config checksum turned into a durable
// content-address table. A long-lived service (cmd/cpsservd) keeps one
// Index mapping ConfigSHA256 → committed result directory, so "have we
// already solved this exact configuration?" is one map lookup, and a
// restart can rediscover (and re-verify) every completed run from disk.
//
// The index is a cache of what the entry manifests already prove: each
// committed entry directory carries its own manifest.json whose
// ConfigSHA256 must equal the entry's key. Recovery therefore never trusts
// the index blindly — it rescans the entries, and the index is rewritten to
// match what actually verified.
package manifest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cpsguard/internal/atomicio"
)

// IndexSchema identifies the store-index format for forward compatibility.
const IndexSchema = "cpsguard-store-index/v1"

// IndexFilename is the canonical index file name inside a store root.
const IndexFilename = "index.json"

// An IndexEntry records one committed result keyed by its config checksum.
type IndexEntry struct {
	// RunID is the durable run identifier served to clients.
	RunID string `json:"run_id"`
	// Dir is the entry directory, relative to the store root.
	Dir string `json:"dir"`
	// Tool is the binary that produced the entry.
	Tool string `json:"tool,omitempty"`
	// Committed is when the entry landed in the store (UTC).
	Committed time.Time `json:"committed"`
	// Outputs counts the digested output artifacts.
	Outputs int `json:"outputs,omitempty"`
	// Bytes sums the digested output artifact sizes.
	Bytes int64 `json:"bytes,omitempty"`
}

// An Index is the durable key → entry table of a content-addressed result
// store. Not safe for concurrent use; the owning store serializes access.
type Index struct {
	Schema string `json:"schema"`
	// Entries maps ConfigSHA256 → committed entry.
	Entries map[string]IndexEntry `json:"entries"`
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{Schema: IndexSchema, Entries: map[string]IndexEntry{}}
}

// Add records (or replaces) the entry for key.
func (ix *Index) Add(key string, e IndexEntry) {
	if ix.Entries == nil {
		ix.Entries = map[string]IndexEntry{}
	}
	ix.Entries[key] = e
}

// Remove drops the entry for key (no-op when absent).
func (ix *Index) Remove(key string) { delete(ix.Entries, key) }

// Write persists the index atomically (temp + fsync + rename), so a crash
// mid-write can never leave a torn index next to intact entries.
func (ix *Index) Write(path string) error {
	data, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: encode index: %w", err)
	}
	return atomicio.MkdirAllAndWrite(path, append(data, '\n'), 0o644)
}

// LoadIndex reads an index written by Write. A missing file returns an
// empty index (a fresh store); a corrupt one returns an error so the caller
// can rebuild from the entries instead of trusting garbage.
func LoadIndex(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewIndex(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("manifest: index: %w", err)
	}
	var ix Index
	if err := json.Unmarshal(data, &ix); err != nil {
		return nil, fmt.Errorf("manifest: decode index %s: %w", path, err)
	}
	if ix.Schema != IndexSchema {
		return nil, fmt.Errorf("manifest: index %s has schema %q, want %q", path, ix.Schema, IndexSchema)
	}
	if ix.Entries == nil {
		ix.Entries = map[string]IndexEntry{}
	}
	return &ix, nil
}

// VerifyDir re-hashes the manifest's output artifacts against dir and
// reports the first integrity violation: a missing file, a size change, or
// a digest mismatch. Outputs are matched by base name, so a committed entry
// verifies regardless of where the artifacts were originally staged. When
// the manifest records a telemetry digest, dir/metrics.json is checked too.
// A nil error means every recorded output byte-matches what is on disk.
func (m *Manifest) VerifyDir(dir string) error {
	check := func(label, base, wantSHA string, wantBytes int64) error {
		d := HashFile(filepath.Join(dir, base))
		if d.Error != "" {
			return fmt.Errorf("manifest: verify %s %s: %s", label, base, d.Error)
		}
		if wantBytes > 0 && d.Bytes != wantBytes {
			return fmt.Errorf("manifest: verify %s %s: %d bytes on disk, manifest says %d",
				label, base, d.Bytes, wantBytes)
		}
		if d.SHA256 != wantSHA {
			return fmt.Errorf("manifest: verify %s %s: sha256 %s on disk, manifest says %s",
				label, base, d.SHA256, wantSHA)
		}
		return nil
	}
	for _, out := range m.Outputs {
		if out.SHA256 == "" {
			return fmt.Errorf("manifest: verify output %s: no digest recorded (%s)",
				filepath.Base(out.Path), out.Error)
		}
		if err := check("output", filepath.Base(out.Path), out.SHA256, out.Bytes); err != nil {
			return err
		}
	}
	if m.TelemetrySHA256 != "" {
		if err := check("telemetry", "metrics.json", m.TelemetrySHA256, 0); err != nil {
			return err
		}
	}
	return nil
}

// SetConfig records an effective configuration that did not come from a
// flag.FlagSet — a service request, say — and computes the same
// order-insensitive checksum CaptureFlags would. Equal maps yield equal
// ConfigSHA256 regardless of how the configuration reached the process, so
// a served scenario and a CLI run of the same config share one address.
func (m *Manifest) SetConfig(flags map[string]string) {
	cp := make(map[string]string, len(flags))
	for k, v := range flags {
		cp[k] = v
	}
	m.Flags = cp
	m.ConfigSHA256 = ConfigChecksum(cp)
}
