// Package manifest records what a run *was*: the seed, the full flag set,
// the inputs and outputs with their SHA-256 digests, and the toolchain —
// everything needed to answer "can I trust / reproduce / diff this run?"
// months later from the artifact directory alone.
//
// Every cpsexp/cpsgen invocation builds one Manifest as it runs (flags at
// startup, artifacts as they are written) and persists it as manifest.json
// through internal/atomicio, so a crash never leaves a half-written
// manifest next to complete-looking CSVs. cmd/cpsreport joins the manifest
// with the event log, trial journal, and telemetry snapshot to reconstruct
// the run, and its -diff mode compares two manifests field by field.
//
// The config checksum hashes the sorted "name=value\n" flag list, so two
// runs with the same effective configuration — regardless of flag order or
// which values were defaulted vs. explicit — get the same checksum.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"cpsguard/internal/atomicio"
)

// Filename is the canonical manifest file name inside a run directory.
const Filename = "manifest.json"

// Schema identifies the manifest format for forward compatibility.
const Schema = "cpsguard-manifest/v1"

// A FileDigest records one input or output artifact.
type FileDigest struct {
	// Path is the file path as the tool saw it (flag value or run-dir
	// relative artifact name).
	Path string `json:"path"`
	// SHA256 is the hex digest of the file contents; "" when the file
	// could not be read (the Error field says why).
	SHA256 string `json:"sha256,omitempty"`
	// Bytes is the file size.
	Bytes int64 `json:"bytes,omitempty"`
	// Error carries the read failure, if any, so a missing input is
	// visible in the manifest instead of silently absent.
	Error string `json:"error,omitempty"`
}

// A Manifest is the reproducibility record for one tool invocation.
type Manifest struct {
	Schema string `json:"schema"`
	// RunID ties the manifest to the event log and telemetry artifacts of
	// the same invocation.
	RunID string `json:"run_id"`
	// Tool is the binary name ("cpsexp", "cpsgen", ...).
	Tool string `json:"tool"`
	// Started/Finished bracket the run in UTC; Finished is zero until
	// Finish is called.
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished,omitzero"`
	// Seed is the run's top-level RNG seed (0 when the tool has none).
	Seed int64 `json:"seed,omitempty"`
	// Flags is the full effective flag set, name → rendered value,
	// including defaulted flags.
	Flags map[string]string `json:"flags,omitempty"`
	// ConfigSHA256 is the checksum of the sorted flag list; equal
	// checksums mean identical effective configuration.
	ConfigSHA256 string `json:"config_sha256,omitempty"`
	// GoVersion and GOOS/GOARCH pin the toolchain.
	GoVersion string `json:"go_version"`
	Platform  string `json:"platform"`
	// Inputs and Outputs are the hashed artifacts, in registration order.
	Inputs  []FileDigest `json:"inputs,omitempty"`
	Outputs []FileDigest `json:"outputs,omitempty"`
	// TelemetrySHA256 is the digest of the telemetry snapshot written
	// alongside this manifest (metrics.json), when one was written.
	TelemetrySHA256 string `json:"telemetry_sha256,omitempty"`
	// Notes carries free-form tool remarks ("resumed 3 trials from
	// journal"), in emission order.
	Notes []string `json:"notes,omitempty"`

	clock func() time.Time
}

// RunID derives a human-sortable run identifier: tool, UTC timestamp, and
// seed. It is intentionally deterministic given (tool, now, seed) so tests
// can pin it.
func RunID(tool string, now time.Time, seed int64) string {
	return fmt.Sprintf("%s-%s-s%x", tool, now.UTC().Format("20060102T150405"), uint64(seed))
}

// New starts a manifest for one invocation of tool, stamping the start time
// and toolchain. The run ID is derived from the start instant and seed.
func New(tool string, seed int64) *Manifest {
	return newAt(tool, seed, time.Now)
}

// newAt is New with an injectable clock, for tests.
func newAt(tool string, seed int64, clock func() time.Time) *Manifest {
	now := clock().UTC()
	return &Manifest{
		Schema:    Schema,
		RunID:     RunID(tool, now, seed),
		Tool:      tool,
		Started:   now,
		Seed:      seed,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		clock:     clock,
	}
}

// SetClock replaces the manifest's time source (tests). nil restores
// time.Now.
func (m *Manifest) SetClock(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	m.clock = clock
}

// CaptureFlags records the full effective flag set from fs (call after
// fs.Parse) and computes the configuration checksum. Defaulted flags are
// included: the manifest records the configuration the run actually used,
// not just what the operator typed.
func (m *Manifest) CaptureFlags(fs *flag.FlagSet) {
	flags := map[string]string{}
	fs.VisitAll(func(f *flag.Flag) {
		flags[f.Name] = f.Value.String()
	})
	m.Flags = flags
	m.ConfigSHA256 = ConfigChecksum(flags)
}

// ConfigChecksum hashes a flag map as sorted "name=value\n" lines and
// returns the hex SHA-256.
func ConfigChecksum(flags map[string]string) string {
	names := make([]string, 0, len(flags))
	for n := range flags {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		fmt.Fprintf(h, "%s=%s\n", n, flags[n])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// HashFile digests one file. Read failures are recorded in the digest, not
// returned: a manifest must still be writable when an input vanished.
func HashFile(path string) FileDigest {
	d := FileDigest{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		d.Error = err.Error()
		return d
	}
	sum := sha256.Sum256(data)
	d.SHA256 = hex.EncodeToString(sum[:])
	d.Bytes = int64(len(data))
	return d
}

// AddInput hashes path and records it as a run input.
func (m *Manifest) AddInput(path string) { m.Inputs = append(m.Inputs, HashFile(path)) }

// AddOutput hashes path and records it as a run output. Call after the
// artifact is fully written.
func (m *Manifest) AddOutput(path string) { m.Outputs = append(m.Outputs, HashFile(path)) }

// SetTelemetry records the digest of an already-written telemetry snapshot.
func (m *Manifest) SetTelemetry(path string) {
	if d := HashFile(path); d.Error == "" {
		m.TelemetrySHA256 = d.SHA256
	}
}

// Note appends a free-form remark.
func (m *Manifest) Note(format string, args ...any) {
	m.Notes = append(m.Notes, fmt.Sprintf(format, args...))
}

// Finish stamps the end time (idempotent: the first call wins).
func (m *Manifest) Finish() {
	if m.Finished.IsZero() {
		clock := m.clock
		if clock == nil {
			clock = time.Now
		}
		m.Finished = clock().UTC()
	}
}

// Marshal renders the manifest as stable indented JSON with a trailing
// newline.
func (m *Manifest) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Write finalizes the manifest and persists it to dir/manifest.json
// atomically (temp + fsync + rename).
func (m *Manifest) Write(dir string) error {
	m.Finish()
	data, err := m.Marshal()
	if err != nil {
		return err
	}
	return atomicio.MkdirAllAndWrite(filepath.Join(dir, Filename), data, 0o644)
}

// Load reads a manifest written by Write. path may be the run directory or
// the manifest file itself.
func Load(path string) (*Manifest, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		path = filepath.Join(path, Filename)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: decode %s: %w", path, err)
	}
	return &m, nil
}

// A DiffEntry is one field-level difference between two manifests.
type DiffEntry struct {
	// Field names what differs ("seed", "flag -trials", "output fig5.csv").
	Field string
	// A and B render each side's value ("<absent>" when one side lacks
	// the field).
	A, B string
}

// Diff compares two manifests field by field, for cpsreport -diff. Equal
// manifests (up to timestamps and run IDs, which always differ) return nil.
func Diff(a, b *Manifest) []DiffEntry {
	var out []DiffEntry
	add := func(field, av, bv string) {
		if av != bv {
			out = append(out, DiffEntry{Field: field, A: av, B: bv})
		}
	}
	add("tool", a.Tool, b.Tool)
	add("seed", fmt.Sprint(a.Seed), fmt.Sprint(b.Seed))
	add("config_sha256", a.ConfigSHA256, b.ConfigSHA256)
	add("go_version", a.GoVersion, b.GoVersion)
	add("platform", a.Platform, b.Platform)
	add("telemetry_sha256", a.TelemetrySHA256, b.TelemetrySHA256)

	for _, name := range unionKeys(a.Flags, b.Flags) {
		av, aok := a.Flags[name]
		bv, bok := b.Flags[name]
		if !aok {
			av = "<absent>"
		}
		if !bok {
			bv = "<absent>"
		}
		add("flag -"+name, av, bv)
	}
	out = append(out, diffDigests("input", a.Inputs, b.Inputs)...)
	out = append(out, diffDigests("output", a.Outputs, b.Outputs)...)
	return out
}

// diffDigests compares artifact lists by base name, so runs in different
// directories still line up.
func diffDigests(kind string, a, b []FileDigest) []DiffEntry {
	am := digestsByBase(a)
	bm := digestsByBase(b)
	var out []DiffEntry
	for _, base := range unionKeys(am, bm) {
		av, aok := am[base]
		bv, bok := bm[base]
		ar, br := "<absent>", "<absent>"
		if aok {
			ar = renderDigest(av)
		}
		if bok {
			br = renderDigest(bv)
		}
		if ar != br {
			out = append(out, DiffEntry{Field: kind + " " + base, A: ar, B: br})
		}
	}
	return out
}

func digestsByBase(ds []FileDigest) map[string]FileDigest {
	m := make(map[string]FileDigest, len(ds))
	for _, d := range ds {
		m[filepath.Base(d.Path)] = d
	}
	return m
}

func renderDigest(d FileDigest) string {
	if d.Error != "" {
		return "error: " + d.Error
	}
	short := d.SHA256
	if len(short) > 12 {
		short = short[:12]
	}
	return fmt.Sprintf("sha256:%s (%d bytes)", short, d.Bytes)
}

// unionKeys returns the sorted union of two string-keyed maps' keys.
func unionKeys[V any](a, b map[string]V) []string {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
