package manifest

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testClock() func() time.Time {
	t := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Minute)
		return t
	}
}

func TestRunIDDeterministic(t *testing.T) {
	now := time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC)
	got := RunID("cpsexp", now, 7)
	if got != "cpsexp-20260304T050607-s7" {
		t.Fatalf("RunID = %q", got)
	}
	// Negative seeds render as unsigned hex, keeping the ID filename-safe.
	if id := RunID("cpsexp", now, -1); strings.Contains(id, "-s-") {
		t.Fatalf("negative seed leaked a dash: %q", id)
	}
}

func TestCaptureFlagsChecksumIgnoresOrderAndSource(t *testing.T) {
	mk := func(args []string) *Manifest {
		fs := flag.NewFlagSet("t", flag.PanicOnError)
		fs.Int("trials", 30, "")
		fs.String("mode", "matrix", "")
		fs.Int64("seed", 1, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		m := newAt("cpsexp", 1, testClock())
		m.CaptureFlags(fs)
		return m
	}
	// Explicitly passing the default value and omitting it must agree.
	a := mk([]string{"-trials", "30", "-mode", "matrix"})
	b := mk([]string{"-mode", "matrix", "-trials", "30"})
	c := mk([]string{})
	if a.ConfigSHA256 != b.ConfigSHA256 || a.ConfigSHA256 != c.ConfigSHA256 {
		t.Fatalf("checksums differ: %s %s %s", a.ConfigSHA256, b.ConfigSHA256, c.ConfigSHA256)
	}
	d := mk([]string{"-trials", "31"})
	if d.ConfigSHA256 == a.ConfigSHA256 {
		t.Fatal("different config, same checksum")
	}
	if a.Flags["trials"] != "30" || a.Flags["seed"] != "1" {
		t.Fatalf("flags = %v", a.Flags)
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(input, []byte(`{"n":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fig5.csv")
	if err := os.WriteFile(out, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := newAt("cpsexp", 7, testClock())
	m.AddInput(input)
	m.AddOutput(out)
	m.AddInput(filepath.Join(dir, "missing.json")) // must not fail the write
	m.Note("resumed %d trials", 3)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	if m.Finished.IsZero() {
		t.Fatal("Write did not stamp Finished")
	}

	// Load accepts both the directory and the file path.
	for _, p := range []string{dir, filepath.Join(dir, Filename)} {
		got, err := Load(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Schema != Schema || got.RunID != m.RunID || got.Seed != 7 {
			t.Fatalf("round trip lost identity: %+v", got)
		}
		if len(got.Inputs) != 2 || got.Inputs[0].SHA256 == "" || got.Inputs[0].Bytes != 7 {
			t.Fatalf("inputs = %+v", got.Inputs)
		}
		if got.Inputs[1].Error == "" {
			t.Fatal("missing input recorded without error")
		}
		if len(got.Outputs) != 1 || got.Outputs[0].SHA256 == "" {
			t.Fatalf("outputs = %+v", got.Outputs)
		}
		if len(got.Notes) != 1 || got.Notes[0] != "resumed 3 trials" {
			t.Fatalf("notes = %v", got.Notes)
		}
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	csvA := filepath.Join(dir, "a", "fig5.csv")
	csvB := filepath.Join(dir, "b", "fig5.csv")
	os.MkdirAll(filepath.Dir(csvA), 0o755)
	os.MkdirAll(filepath.Dir(csvB), 0o755)
	os.WriteFile(csvA, []byte("1\n"), 0o644)
	os.WriteFile(csvB, []byte("2\n"), 0o644)

	a := newAt("cpsexp", 7, testClock())
	a.Flags = map[string]string{"trials": "30", "mode": "matrix"}
	a.ConfigSHA256 = ConfigChecksum(a.Flags)
	a.AddOutput(csvA)

	b := newAt("cpsexp", 9, testClock())
	b.Flags = map[string]string{"trials": "60", "mode": "matrix", "quick": "true"}
	b.ConfigSHA256 = ConfigChecksum(b.Flags)
	b.AddOutput(csvB)

	diffs := Diff(a, b)
	byField := map[string]DiffEntry{}
	for _, d := range diffs {
		byField[d.Field] = d
	}
	for _, want := range []string{"seed", "config_sha256", "flag -trials", "flag -quick", "output fig5.csv"} {
		if _, ok := byField[want]; !ok {
			t.Fatalf("diff missing %q (have %v)", want, diffs)
		}
	}
	if _, ok := byField["flag -mode"]; ok {
		t.Fatal("identical flag reported as a diff")
	}
	if byField["flag -quick"].A != "<absent>" {
		t.Fatalf("absent flag rendered as %q", byField["flag -quick"].A)
	}
	// Same-directory outputs line up by base name even across directories.
	if !strings.HasPrefix(byField["output fig5.csv"].A, "sha256:") {
		t.Fatalf("digest render = %q", byField["output fig5.csv"].A)
	}

	// Identical manifests (same seed/flags/outputs) diff clean.
	if d := Diff(a, a); d != nil {
		t.Fatalf("self diff = %v", d)
	}
}
