package graph

import (
	"strings"
	"testing"
)

func dotGraph() *Graph {
	g := New("dot-test")
	g.MustAddVertex(Vertex{ID: "gen", Supply: 50, SupplyCost: 3})
	g.MustAddVertex(Vertex{ID: "hub"})
	g.MustAddVertex(Vertex{ID: "load", Demand: 40, Price: 9})
	g.MustAddEdge(Edge{ID: "a", From: "gen", To: "hub", Capacity: 50, Kind: KindGeneration})
	g.MustAddEdge(Edge{ID: "b", From: "hub", To: "load", Capacity: 45, Loss: 0.05, Kind: KindDistribution})
	return g
}

func TestDOTStructure(t *testing.T) {
	out := dotGraph().DOT()
	for _, want := range []string{
		`digraph "dot-test"`,
		`"gen" [shape=box`,
		`"load" [shape=house`,
		`"hub" [shape=ellipse`,
		`"gen" -> "hub"`,
		`"hub" -> "load"`,
		"color=darkgreen",
		"color=gray40",
		"l=0.05",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT not closed")
	}
}

func TestDOTUnknownKindBlack(t *testing.T) {
	g := dotGraph()
	g.Edges[0].Kind = "mystery"
	if !strings.Contains(g.DOT(), "color=black") {
		t.Error("unknown kind should render black")
	}
}

func TestKindCounts(t *testing.T) {
	counts := dotGraph().KindCounts()
	if counts[KindGeneration] != 1 || counts[KindDistribution] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSortedVertexIDs(t *testing.T) {
	ids := dotGraph().SortedVertexIDs()
	if len(ids) != 3 || ids[0] != "gen" || ids[1] != "hub" || ids[2] != "load" {
		t.Fatalf("ids = %v", ids)
	}
}
