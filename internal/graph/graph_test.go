package graph

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func line(id string) *Graph {
	g := New(id)
	g.MustAddVertex(Vertex{ID: "gen", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(Vertex{ID: "hub"})
	g.MustAddVertex(Vertex{ID: "load", Demand: 80, Price: 10})
	g.MustAddEdge(Edge{ID: "g-h", From: "gen", To: "hub", Capacity: 100, Cost: 0.1, Kind: KindGeneration})
	g.MustAddEdge(Edge{ID: "h-l", From: "hub", To: "load", Capacity: 90, Loss: 0.05, Cost: 0.2, Kind: KindDistribution})
	return g
}

func TestBuildAndLookup(t *testing.T) {
	g := line("t")
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.VertexIndex("hub") != 1 || g.VertexIndex("nope") != -1 {
		t.Fatal("VertexIndex wrong")
	}
	if g.EdgeIndex("h-l") != 1 || g.EdgeIndex("nope") != -1 {
		t.Fatal("EdgeIndex wrong")
	}
	if g.Vertex("gen") == nil || g.Vertex("zzz") != nil {
		t.Fatal("Vertex lookup wrong")
	}
	if g.Edge("g-h") == nil || g.Edge("zzz") != nil {
		t.Fatal("Edge lookup wrong")
	}
	if got := g.InEdges("hub"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("InEdges(hub) = %v", got)
	}
	if got := g.OutEdges("hub"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutEdges(hub) = %v", got)
	}
}

func TestDuplicateAndUnknownRejected(t *testing.T) {
	g := New("t")
	if err := g.AddVertex(Vertex{ID: ""}); !errors.Is(err, ErrValidation) {
		t.Fatalf("empty vertex ID: %v", err)
	}
	g.MustAddVertex(Vertex{ID: "a"})
	if err := g.AddVertex(Vertex{ID: "a"}); !errors.Is(err, ErrValidation) {
		t.Fatalf("dup vertex: %v", err)
	}
	if err := g.AddEdge(Edge{ID: "e", From: "a", To: "b"}); !errors.Is(err, ErrValidation) {
		t.Fatalf("unknown endpoint: %v", err)
	}
	g.MustAddVertex(Vertex{ID: "b"})
	g.MustAddEdge(Edge{ID: "e", From: "a", To: "b", Capacity: 1})
	if err := g.AddEdge(Edge{ID: "e", From: "a", To: "b", Capacity: 1}); !errors.Is(err, ErrValidation) {
		t.Fatalf("dup edge: %v", err)
	}
	if err := g.AddEdge(Edge{ID: "", From: "a", To: "b"}); !errors.Is(err, ErrValidation) {
		t.Fatalf("empty edge ID: %v", err)
	}
}

func TestValidateCatchesBadNumbers(t *testing.T) {
	cases := []func(*Graph){
		func(g *Graph) { g.Vertices[0].Supply = -1 },
		func(g *Graph) { g.Vertices[0].Supply = math.NaN() },
		func(g *Graph) { g.Vertices[2].Demand = math.Inf(1) },
		func(g *Graph) { g.Edges[0].Capacity = -5 },
		func(g *Graph) { g.Edges[0].Loss = 1.0 },
		func(g *Graph) { g.Edges[0].Loss = -0.1 },
		func(g *Graph) { g.Edges[0].Cost = math.NaN() },
		func(g *Graph) { g.Edges[1].From = "gen"; g.Edges[1].To = "gen" },
	}
	for i, mutate := range cases {
		g := line("t")
		mutate(g)
		if err := g.Validate(); !errors.Is(err, ErrValidation) {
			t.Errorf("case %d: Validate = %v, want ErrValidation", i, err)
		}
	}
}

func TestCheckAdequacy(t *testing.T) {
	g := line("t")
	if err := g.CheckAdequacy(); err != nil {
		t.Fatalf("adequate model flagged: %v", err)
	}
	g.Vertices[2].Demand = 500 // exceeds the 90-capacity inbound edge
	err := g.CheckAdequacy()
	if !errors.Is(err, ErrValidation) || !strings.Contains(err.Error(), "load") {
		t.Fatalf("CheckAdequacy = %v, want load violation", err)
	}
	g2 := line("t2")
	g2.Vertices[0].Supply = 1e6
	if err := g2.CheckAdequacy(); !errors.Is(err, ErrValidation) {
		t.Fatalf("supply violation not caught: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := line("orig")
	c := g.Clone()
	c.Edges[0].Capacity = 1
	c.Vertices[0].Supply = 1
	if g.Edges[0].Capacity == 1 || g.Vertices[0].Supply == 1 {
		t.Fatal("Clone shares backing storage with original")
	}
	if c.EdgeIndex("h-l") != 1 {
		t.Fatal("clone lost indexes")
	}
}

func TestSourcesSinksTotals(t *testing.T) {
	g := line("t")
	if got := g.Sources(); len(got) != 1 || got[0] != "gen" {
		t.Fatalf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != "load" {
		t.Fatalf("Sinks = %v", got)
	}
	if g.TotalSupply() != 100 || g.TotalDemand() != 80 {
		t.Fatalf("totals: %v %v", g.TotalSupply(), g.TotalDemand())
	}
}

func TestAssetIDsSorted(t *testing.T) {
	g := line("t")
	ids := g.AssetIDs()
	if len(ids) != 2 || ids[0] != "g-h" || ids[1] != "h-l" {
		t.Fatalf("AssetIDs = %v", ids)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := line("round")
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "round" || len(back.Vertices) != 3 || len(back.Edges) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// Indexes must work after unmarshal.
	if back.EdgeIndex("h-l") != 1 || back.Vertex("gen") == nil {
		t.Fatal("indexes not rebuilt after unmarshal")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
}

func TestStringSummary(t *testing.T) {
	s := line("t").String()
	for _, want := range []string{"3 vertices", "2 edges", "supply 100", "demand 80"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

// Property: Clone always round-trips through JSON to an equivalent graph.
func TestQuickCloneJSONEquivalence(t *testing.T) {
	f := func(capA, capB float64, loss float64, demand float64) bool {
		capA = math.Abs(capA)
		capB = math.Abs(capB)
		demand = math.Abs(demand)
		loss = math.Mod(math.Abs(loss), 0.99)
		if math.IsNaN(capA) || math.IsInf(capA, 0) || math.IsNaN(capB) || math.IsInf(capB, 0) ||
			math.IsNaN(loss) || math.IsNaN(demand) || math.IsInf(demand, 0) {
			return true
		}
		g := New("q")
		g.MustAddVertex(Vertex{ID: "s", Supply: capA, SupplyCost: 1})
		g.MustAddVertex(Vertex{ID: "d", Demand: demand, Price: 5})
		g.MustAddEdge(Edge{ID: "e1", From: "s", To: "d", Capacity: capB, Loss: loss})
		data, err := json.Marshal(g)
		if err != nil {
			return false
		}
		var back Graph
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Edges[0].Capacity == capB && back.Edges[0].Loss == loss &&
			back.Vertices[0].Supply == capA && back.Vertices[1].Demand == demand
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddVertex should panic on duplicate")
		}
	}()
	g := New("p")
	g.MustAddVertex(Vertex{ID: "a"})
	g.MustAddVertex(Vertex{ID: "a"})
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge should panic on unknown endpoint")
		}
	}()
	g := New("p")
	g.MustAddEdge(Edge{ID: "e", From: "x", To: "y"})
}
