// Design interventions: the defense-as-redesign counterpart of attack
// perturbations (after Oruganti et al., arXiv:2302.05411). Where package
// impact perturbs an existing grid downward (outages), an Intervention
// changes the grid's design upward — a new edge, or extra capacity on an
// existing one — at a capital cost the defender pays from a budget.
package graph

import "fmt"

// Intervention is one candidate design change.
type Intervention struct {
	// ID names the intervention (unique within a candidate set; by
	// convention "ivnew:<edge>" for new edges and "ivup:<edge>" for
	// capacity upgrades).
	ID string `json:"id"`
	// NewEdge, when non-nil, is an edge added to the grid. Its ID must not
	// collide with an existing edge.
	NewEdge *Edge `json:"new_edge,omitempty"`
	// UpgradeEdge names an existing edge whose capacity is raised by
	// CapacityDelta (ignored when NewEdge is set).
	UpgradeEdge string `json:"upgrade_edge,omitempty"`
	// CapacityDelta is the capacity added to UpgradeEdge (must be > 0).
	CapacityDelta float64 `json:"capacity_delta,omitempty"`
	// Cost is the capital cost of building this intervention.
	Cost float64 `json:"cost"`
}

// Validate checks the intervention is well-formed against g (which it does
// not modify).
func (iv Intervention) Validate(g *Graph) error {
	if iv.ID == "" {
		return fmt.Errorf("%w: intervention with empty ID", ErrValidation)
	}
	if iv.Cost < 0 || iv.Cost != iv.Cost {
		return fmt.Errorf("%w: intervention %q has invalid cost %v", ErrValidation, iv.ID, iv.Cost)
	}
	if iv.NewEdge != nil {
		if g.Edge(iv.NewEdge.ID) != nil {
			return fmt.Errorf("%w: intervention %q adds duplicate edge %q", ErrValidation, iv.ID, iv.NewEdge.ID)
		}
		if g.Vertex(iv.NewEdge.From) == nil || g.Vertex(iv.NewEdge.To) == nil {
			return fmt.Errorf("%w: intervention %q references unknown vertices %q→%q",
				ErrValidation, iv.ID, iv.NewEdge.From, iv.NewEdge.To)
		}
		return nil
	}
	if g.Edge(iv.UpgradeEdge) == nil {
		return fmt.Errorf("%w: intervention %q upgrades unknown edge %q", ErrValidation, iv.ID, iv.UpgradeEdge)
	}
	if !(iv.CapacityDelta > 0) {
		return fmt.Errorf("%w: intervention %q has non-positive capacity delta %v",
			ErrValidation, iv.ID, iv.CapacityDelta)
	}
	return nil
}

// ApplyInterventions returns a validated clone of g with the interventions
// built. The input graph is never modified.
func ApplyInterventions(g *Graph, ivs ...Intervention) (*Graph, error) {
	c := g.Clone()
	for _, iv := range ivs {
		if err := iv.Validate(c); err != nil {
			return nil, err
		}
		if iv.NewEdge != nil {
			if err := c.AddEdge(*iv.NewEdge); err != nil {
				return nil, fmt.Errorf("intervention %q: %w", iv.ID, err)
			}
			continue
		}
		c.Edge(iv.UpgradeEdge).Capacity += iv.CapacityDelta
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
