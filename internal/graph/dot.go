package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax, one node per vertex and one
// arrow per edge, labelled with capacity and loss — a machine-renderable
// stand-in for the paper's Figure 1. Vertices with supply render as boxes,
// with demand as houses, hubs as ellipses; edge kinds map to colors.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n  edge [fontsize=8];\n")

	for _, v := range g.Vertices {
		shape := "ellipse"
		label := v.ID
		switch {
		case v.Supply > 0:
			shape = "box"
			label = fmt.Sprintf("%s\\ns=%.4g @ %.4g", v.ID, v.Supply, v.SupplyCost)
		case v.Demand > 0:
			shape = "house"
			label = fmt.Sprintf("%s\\nd=%.4g @ %.4g", v.ID, v.Demand, v.Price)
		}
		fmt.Fprintf(&b, "  %q [shape=%s, label=%q];\n", v.ID, shape, label)
	}

	colors := map[Kind]string{
		KindTransmission: "blue",
		KindPipeline:     "orange",
		KindGeneration:   "darkgreen",
		KindDistribution: "gray40",
		KindConversion:   "red",
		KindImport:       "purple",
	}
	for _, e := range g.Edges {
		color, ok := colors[e.Kind]
		if !ok {
			color = "black"
		}
		label := fmt.Sprintf("%s\\nc=%.4g", e.ID, e.Capacity)
		if e.Loss > 0 {
			label += fmt.Sprintf(" l=%.3g", e.Loss)
		}
		fmt.Fprintf(&b, "  %q -> %q [color=%s, label=%q];\n", e.From, e.To, color, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// KindCounts tallies edges by kind (diagnostics and tests).
func (g *Graph) KindCounts() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range g.Edges {
		out[e.Kind]++
	}
	return out
}

// SortedVertexIDs returns all vertex IDs in sorted order.
func (g *Graph) SortedVertexIDs() []string {
	ids := make([]string, len(g.Vertices))
	for i, v := range g.Vertices {
		ids[i] = v.ID
	}
	sort.Strings(ids)
	return ids
}
