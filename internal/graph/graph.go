// Package graph defines the directed flow-graph model of an energy-based
// cyber-physical system, following Section II-D of Wood, Bagchi & Hussain,
// "Optimizing Defensive Investments in Energy-Based Cyber-Physical Systems"
// (IPPS 2015).
//
// Vertices are hubs (electrical buses or gas pipe headers). A vertex may act
// as a source (generator) with a maximum supply s(v) and a per-unit
// production cost, and/or a sink (load) with a maximum demand d(v) and a
// per-unit price consumers pay. Edges carry energy between hubs and have a
// capacity c(u,v), a fractional transmission loss l(u,v) ∈ [0,1), and a unit
// transport cost a(u,v) (which may be negative to express revenues, exactly
// as the paper allows).
//
// In the paper's notation (Table I): a(u,v)=Edge.Cost, c(u,v)=Edge.Capacity,
// l(u,v)=Edge.Loss, s(v)=Vertex.Supply, d(v)=Vertex.Demand; L is the set of
// vertices with Demand>0 and G the set with Supply>0.
package graph

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies an edge by the physical asset it represents. It has no
// effect on dispatch; it exists so attack/defense layers can reason about
// asset classes (e.g. "only pipelines are attackable in this scenario").
type Kind string

// Edge kinds used by the westgrid model. User models may define their own.
const (
	KindTransmission Kind = "transmission" // long-haul electric line
	KindPipeline     Kind = "pipeline"     // long-haul gas pipeline
	KindGeneration   Kind = "generation"   // generator-to-hub injection
	KindDistribution Kind = "distribution" // hub-to-consumer delivery
	KindConversion   Kind = "conversion"   // gas-to-electric coupling
	KindImport       Kind = "import"       // out-of-model supply
)

// Vertex is one hub in the system.
type Vertex struct {
	ID string `json:"id"`
	// Supply is the maximum injection s(v) available at this vertex
	// (0 for pure hubs and loads).
	Supply float64 `json:"supply,omitempty"`
	// SupplyCost is the per-unit production cost at this vertex.
	SupplyCost float64 `json:"supply_cost,omitempty"`
	// Demand is the maximum absorption d(v) at this vertex.
	Demand float64 `json:"demand,omitempty"`
	// Price is the per-unit revenue collected for energy delivered here.
	Price float64 `json:"price,omitempty"`
	// Lat, Lon locate the hub (used only for distance-derived losses).
	Lat float64 `json:"lat,omitempty"`
	Lon float64 `json:"lon,omitempty"`
}

// Edge is one directed asset connecting two hubs.
type Edge struct {
	ID       string  `json:"id"`
	From     string  `json:"from"`
	To       string  `json:"to"`
	Capacity float64 `json:"capacity"`
	// Loss is the fractional loss l(u,v) ∈ [0,1): delivering f units at
	// To draws f/(1−Loss) units at From.
	Loss float64 `json:"loss,omitempty"`
	// Cost is the unit transport cost a(u,v); negative values represent
	// revenues per the paper.
	Cost float64 `json:"cost,omitempty"`
	// Owner is the actor that owns this asset ("" = unassigned; the
	// actors package reassigns owners per experiment trial).
	Owner string `json:"owner,omitempty"`
	// Kind classifies the asset (see Kind).
	Kind Kind `json:"kind,omitempty"`
}

// Graph is an energy flow network. Construct with New and the Add methods,
// or unmarshal from JSON; call Validate before dispatching.
type Graph struct {
	Name     string   `json:"name,omitempty"`
	Vertices []Vertex `json:"vertices"`
	Edges    []Edge   `json:"edges"`

	vIndex map[string]int
	eIndex map[string]int
}

// New returns an empty named graph.
func New(name string) *Graph {
	return &Graph{Name: name, vIndex: map[string]int{}, eIndex: map[string]int{}}
}

// ErrValidation is wrapped by all Validate failures.
var ErrValidation = errors.New("graph: validation failed")

// AddVertex appends a vertex. Duplicate IDs are rejected.
func (g *Graph) AddVertex(v Vertex) error {
	g.ensureIndex()
	if v.ID == "" {
		return fmt.Errorf("%w: vertex with empty ID", ErrValidation)
	}
	if _, dup := g.vIndex[v.ID]; dup {
		return fmt.Errorf("%w: duplicate vertex %q", ErrValidation, v.ID)
	}
	g.vIndex[v.ID] = len(g.Vertices)
	g.Vertices = append(g.Vertices, v)
	return nil
}

// MustAddVertex is AddVertex, panicking on error. Intended for model
// builders with statically-known IDs.
func (g *Graph) MustAddVertex(v Vertex) {
	if err := g.AddVertex(v); err != nil {
		panic(err)
	}
}

// AddEdge appends an edge. Both endpoints must already exist.
func (g *Graph) AddEdge(e Edge) error {
	g.ensureIndex()
	if e.ID == "" {
		return fmt.Errorf("%w: edge with empty ID", ErrValidation)
	}
	if _, dup := g.eIndex[e.ID]; dup {
		return fmt.Errorf("%w: duplicate edge %q", ErrValidation, e.ID)
	}
	if _, ok := g.vIndex[e.From]; !ok {
		return fmt.Errorf("%w: edge %q references unknown vertex %q", ErrValidation, e.ID, e.From)
	}
	if _, ok := g.vIndex[e.To]; !ok {
		return fmt.Errorf("%w: edge %q references unknown vertex %q", ErrValidation, e.ID, e.To)
	}
	g.eIndex[e.ID] = len(g.Edges)
	g.Edges = append(g.Edges, e)
	return nil
}

// MustAddEdge is AddEdge, panicking on error.
func (g *Graph) MustAddEdge(e Edge) {
	if err := g.AddEdge(e); err != nil {
		panic(err)
	}
}

func (g *Graph) ensureIndex() {
	if g.vIndex != nil {
		return
	}
	g.vIndex = make(map[string]int, len(g.Vertices))
	for i, v := range g.Vertices {
		g.vIndex[v.ID] = i
	}
	g.eIndex = make(map[string]int, len(g.Edges))
	for i, e := range g.Edges {
		g.eIndex[e.ID] = i
	}
}

// VertexIndex returns the position of vertex id, or -1.
func (g *Graph) VertexIndex(id string) int {
	g.ensureIndex()
	if i, ok := g.vIndex[id]; ok {
		return i
	}
	return -1
}

// EdgeIndex returns the position of edge id, or -1.
func (g *Graph) EdgeIndex(id string) int {
	g.ensureIndex()
	if i, ok := g.eIndex[id]; ok {
		return i
	}
	return -1
}

// Vertex returns the vertex with the given ID, or nil.
func (g *Graph) Vertex(id string) *Vertex {
	if i := g.VertexIndex(id); i >= 0 {
		return &g.Vertices[i]
	}
	return nil
}

// Edge returns the edge with the given ID, or nil.
func (g *Graph) Edge(id string) *Edge {
	if i := g.EdgeIndex(id); i >= 0 {
		return &g.Edges[i]
	}
	return nil
}

// InEdges returns the indices of edges entering vertex id.
func (g *Graph) InEdges(id string) []int {
	var out []int
	for i, e := range g.Edges {
		if e.To == id {
			out = append(out, i)
		}
	}
	return out
}

// OutEdges returns the indices of edges leaving vertex id.
func (g *Graph) OutEdges(id string) []int {
	var out []int
	for i, e := range g.Edges {
		if e.From == id {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural soundness: positive-capacity edges, losses in
// [0,1), nonnegative supplies/demands, known endpoints, no NaN/Inf, and the
// paper's Eqs. 3–4 feasibility preconditions (every load's demand must be
// reachable through incident capacity, every generator's supply deliverable).
func (g *Graph) Validate() error {
	g.ensureIndex()
	seenV := map[string]bool{}
	for _, v := range g.Vertices {
		if v.ID == "" {
			return fmt.Errorf("%w: vertex with empty ID", ErrValidation)
		}
		if seenV[v.ID] {
			return fmt.Errorf("%w: duplicate vertex %q", ErrValidation, v.ID)
		}
		seenV[v.ID] = true
		for name, val := range map[string]float64{
			"supply": v.Supply, "supply_cost": v.SupplyCost,
			"demand": v.Demand, "price": v.Price,
		} {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				return fmt.Errorf("%w: vertex %q has non-finite %s", ErrValidation, v.ID, name)
			}
		}
		if v.Supply < 0 || v.Demand < 0 {
			return fmt.Errorf("%w: vertex %q has negative supply/demand", ErrValidation, v.ID)
		}
	}
	seenE := map[string]bool{}
	for _, e := range g.Edges {
		if e.ID == "" {
			return fmt.Errorf("%w: edge with empty ID", ErrValidation)
		}
		if seenE[e.ID] {
			return fmt.Errorf("%w: duplicate edge %q", ErrValidation, e.ID)
		}
		seenE[e.ID] = true
		if !seenV[e.From] || !seenV[e.To] {
			return fmt.Errorf("%w: edge %q has unknown endpoint", ErrValidation, e.ID)
		}
		if e.From == e.To {
			return fmt.Errorf("%w: edge %q is a self-loop", ErrValidation, e.ID)
		}
		if math.IsNaN(e.Capacity) || e.Capacity < 0 || math.IsInf(e.Capacity, 0) {
			return fmt.Errorf("%w: edge %q capacity %v", ErrValidation, e.ID, e.Capacity)
		}
		if math.IsNaN(e.Loss) || e.Loss < 0 || e.Loss >= 1 {
			return fmt.Errorf("%w: edge %q loss %v outside [0,1)", ErrValidation, e.ID, e.Loss)
		}
		if math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			return fmt.Errorf("%w: edge %q cost %v", ErrValidation, e.ID, e.Cost)
		}
	}
	return nil
}

// CheckAdequacy verifies the paper's Eqs. 3–4: each load vertex has enough
// incident inbound capacity to meet its demand, and each generator enough
// outbound capacity to ship its supply. It returns a descriptive error
// listing every violation, or nil. Unlike Validate, adequacy violations are
// warnings in practice (the LP simply dispatches less), so callers may treat
// the error as advisory.
func (g *Graph) CheckAdequacy() error {
	var problems []string
	for _, v := range g.Vertices {
		if v.Demand > 0 {
			cap := 0.0
			for _, i := range g.InEdges(v.ID) {
				cap += g.Edges[i].Capacity
			}
			if cap+v.Supply < v.Demand {
				problems = append(problems, fmt.Sprintf(
					"load %q: demand %.4g exceeds inbound capacity %.4g", v.ID, v.Demand, cap))
			}
		}
		if v.Supply > 0 {
			cap := 0.0
			for _, i := range g.OutEdges(v.ID) {
				cap += g.Edges[i].Capacity
			}
			if cap+v.Demand < v.Supply {
				problems = append(problems, fmt.Sprintf(
					"generator %q: supply %.4g exceeds outbound capacity %.4g", v.ID, v.Supply, cap))
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("%w: %s", ErrValidation, strings.Join(problems, "; "))
	}
	return nil
}

// Clone returns a deep copy of the graph. Perturbation layers clone before
// mutating so the ground-truth model is never touched.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name}
	c.Vertices = append([]Vertex(nil), g.Vertices...)
	c.Edges = append([]Edge(nil), g.Edges...)
	c.ensureIndex()
	return c
}

// Sources returns the IDs of vertices with positive supply (set G).
func (g *Graph) Sources() []string {
	var out []string
	for _, v := range g.Vertices {
		if v.Supply > 0 {
			out = append(out, v.ID)
		}
	}
	return out
}

// Sinks returns the IDs of vertices with positive demand (set L).
func (g *Graph) Sinks() []string {
	var out []string
	for _, v := range g.Vertices {
		if v.Demand > 0 {
			out = append(out, v.ID)
		}
	}
	return out
}

// TotalDemand sums d(v) over all sinks.
func (g *Graph) TotalDemand() float64 {
	t := 0.0
	for _, v := range g.Vertices {
		t += v.Demand
	}
	return t
}

// TotalSupply sums s(v) over all sources.
func (g *Graph) TotalSupply() float64 {
	t := 0.0
	for _, v := range g.Vertices {
		t += v.Supply
	}
	return t
}

// AssetIDs returns all edge IDs, sorted. Edges are the attackable assets in
// the paper's model ("each edge in the graph represents a physical component
// or asset", Section II-E2).
func (g *Graph) AssetIDs() []string {
	ids := make([]string, len(g.Edges))
	for i, e := range g.Edges {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return ids
}

// MarshalJSON implements json.Marshaler (plain struct encoding; indexes are
// rebuilt on demand after unmarshaling).
func (g *Graph) MarshalJSON() ([]byte, error) {
	type plain Graph
	return json.Marshal((*plain)(g))
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	type plain Graph
	if err := json.Unmarshal(data, (*plain)(g)); err != nil {
		return err
	}
	g.vIndex, g.eIndex = nil, nil
	g.ensureIndex()
	return nil
}

// String renders a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: %d vertices, %d edges, supply %.4g, demand %.4g",
		g.Name, len(g.Vertices), len(g.Edges), g.TotalSupply(), g.TotalDemand())
}
