package graph

import (
	"encoding/json"
	"testing"
)

// FuzzUnmarshalValidate feeds arbitrary bytes through the JSON decoder and
// validator: neither may panic, and any graph that validates must survive
// a marshal → unmarshal → validate round trip.
func FuzzUnmarshalValidate(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"x","vertices":[],"edges":[]}`,
		`{"vertices":[{"id":"a","supply":5}],"edges":[]}`,
		`{"vertices":[{"id":"a"},{"id":"b","demand":3,"price":2}],
		  "edges":[{"id":"e","from":"a","to":"b","capacity":4,"loss":0.1}]}`,
		`{"vertices":[{"id":"a"},{"id":"a"}],"edges":[]}`,
		`{"vertices":[{"id":"a"}],"edges":[{"id":"e","from":"a","to":"zzz","capacity":1}]}`,
		`{"vertices":[{"id":"a"},{"id":"b"}],"edges":[{"id":"e","from":"a","to":"b","capacity":-1}]}`,
		`{"vertices":[{"id":"a"},{"id":"b"}],"edges":[{"id":"e","from":"a","to":"b","capacity":1,"loss":1.5}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return // malformed JSON is fine
		}
		if err := g.Validate(); err != nil {
			return // invalid graphs must be *reported*, not panic
		}
		out, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("valid graph failed to marshal: %v", err)
		}
		var back Graph
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round trip invalidated the graph: %v", err)
		}
		if len(back.Vertices) != len(g.Vertices) || len(back.Edges) != len(g.Edges) {
			t.Fatal("round trip changed entity counts")
		}
	})
}
