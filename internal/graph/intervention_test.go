package graph

import (
	"errors"
	"testing"
)

func ivTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("iv-test")
	g.MustAddVertex(Vertex{ID: "a", Supply: 10, SupplyCost: 1})
	g.MustAddVertex(Vertex{ID: "b", Demand: 10, Price: 5})
	g.MustAddEdge(Edge{ID: "ab", From: "a", To: "b", Capacity: 8, Kind: KindTransmission})
	return g
}

func TestApplyInterventionsUpgrade(t *testing.T) {
	g := ivTestGraph(t)
	out, err := ApplyInterventions(g, Intervention{
		ID: "ivup:ab", UpgradeEdge: "ab", CapacityDelta: 4, Cost: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Edge("ab").Capacity; got != 12 {
		t.Errorf("upgraded capacity = %v, want 12", got)
	}
	if got := g.Edge("ab").Capacity; got != 8 {
		t.Errorf("input graph mutated: capacity %v, want 8", got)
	}
}

func TestApplyInterventionsNewEdge(t *testing.T) {
	g := ivTestGraph(t)
	out, err := ApplyInterventions(g, Intervention{
		ID: "ivnew:ab", Cost: 6,
		NewEdge: &Edge{ID: "ab2", From: "a", To: "b", Capacity: 4, Kind: KindTransmission},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Edge("ab2") == nil {
		t.Fatal("new edge not built")
	}
	if g.Edge("ab2") != nil {
		t.Fatal("input graph mutated: new edge present")
	}
}

func TestInterventionValidation(t *testing.T) {
	g := ivTestGraph(t)
	bad := []Intervention{
		{ID: "", UpgradeEdge: "ab", CapacityDelta: 1},
		{ID: "ivup:ab", UpgradeEdge: "ab", CapacityDelta: 1, Cost: -1},
		{ID: "ivup:missing", UpgradeEdge: "missing", CapacityDelta: 1},
		{ID: "ivup:ab", UpgradeEdge: "ab", CapacityDelta: 0},
		{ID: "ivup:ab", UpgradeEdge: "ab", CapacityDelta: -2},
		{ID: "ivnew:dup", NewEdge: &Edge{ID: "ab", From: "a", To: "b", Capacity: 1}},
		{ID: "ivnew:ghost", NewEdge: &Edge{ID: "x", From: "a", To: "ghost", Capacity: 1}},
	}
	for _, iv := range bad {
		if _, err := ApplyInterventions(g, iv); !errors.Is(err, ErrValidation) {
			t.Errorf("intervention %+v: err = %v, want ErrValidation", iv, err)
		}
	}
}
