package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a hex SHA-256 digest of the graph's full numeric and
// topological content — name, vertices (ID, supply, cost, demand, price,
// coordinates) and edges (ID, endpoints, capacity, loss, cost, owner) in
// declaration order. Two graphs share a fingerprint iff every dispatch,
// impact, and profit computation over them is identical, which makes the
// digest the cache-key salt for the solve memo (package solvecache): a
// perturbed clone or a different ownership draw can never alias a cached
// result from another grid.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	ws(g.Name)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Vertices)))
	h.Write(buf[:])
	for _, v := range g.Vertices {
		ws(v.ID)
		wf(v.Supply)
		wf(v.SupplyCost)
		wf(v.Demand)
		wf(v.Price)
		wf(v.Lat)
		wf(v.Lon)
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(len(g.Edges)))
	h.Write(buf[:])
	for _, e := range g.Edges {
		ws(e.ID)
		ws(e.From)
		ws(e.To)
		wf(e.Capacity)
		wf(e.Loss)
		wf(e.Cost)
		ws(e.Owner)
	}
	return hex.EncodeToString(h.Sum(nil))
}
