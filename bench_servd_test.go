// Service cache-hit benchmark report: `make bench-servd` runs TestBenchServd
// with BENCH_SERVD_OUT set, which times BenchmarkServdCacheHit — the full
// HTTP round trip of a deduped POST /scenarios, including the store's
// integrity re-verification of the committed artifact — and writes
// BENCH_servd.json (cpsguard-bench/v1 envelope) pairing ns/op with the
// service counters, so regressions in the hot serve path land in one
// reviewable file.
package cpsguard

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/manifest"
	"cpsguard/internal/servd"
	"cpsguard/internal/telemetry"
)

// benchRunner writes a fixed-size valid bundle — the benchmark populates the
// store once through it, then measures pure cache hits.
type benchRunner struct{ csv []byte }

func (r benchRunner) Run(ctx context.Context, sc servd.ScenarioConfig, dir string) error {
	path := filepath.Join(dir, sc.ArtifactName())
	if err := os.WriteFile(path, r.csv, 0o644); err != nil {
		return err
	}
	m := manifest.New("cpsservd", int64(sc.Seed))
	m.SetConfig(sc.FlagMap())
	m.AddOutput(path)
	m.Finish()
	return m.Write(dir)
}

// BenchmarkServdCacheHit measures one deduped submit: HTTP POST → config
// canonicalization → store lookup → artifact digest re-verification →
// status JSON. The store holds one ~2 KB entry, the realistic size of a
// figure CSV.
func BenchmarkServdCacheHit(b *testing.B) {
	store, _, err := servd.Open(filepath.Join(b.TempDir(), "store"))
	if err != nil {
		b.Fatal(err)
	}
	csv := bytes.Repeat([]byte("n,sigma,profit,defense\n3,0.25,41.5,12.0\n"), 50)
	srv, err := servd.New(servd.Options{Store: store, Runner: benchRunner{csv}})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := `{"figure":"5","quick":true}`
	post := func(wait bool) []byte {
		url := hs.URL + "/scenarios"
		if wait {
			url += "?wait=1"
		}
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("submit: %d %s", resp.StatusCode, data)
		}
		return data
	}
	post(true) // populate the entry outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if data := post(false); !bytes.Contains(data, []byte(`"cached": true`)) {
			b.Fatalf("not a cache hit: %s", data)
		}
	}
}

// TestBenchServd is gated by BENCH_SERVD_OUT: unset, it skips; set, it runs
// BenchmarkServdCacheHit and writes the JSON report to that path.
func TestBenchServd(t *testing.T) {
	out := os.Getenv("BENCH_SERVD_OUT")
	if out == "" {
		t.Skip("set BENCH_SERVD_OUT=path to run the servd cache-hit benchmark")
	}
	reg := telemetry.Default()
	reg.Reset()
	r := testing.Benchmark(BenchmarkServdCacheHit)
	snap := reg.Snapshot(telemetry.SnapshotOptions{})
	counters := make(map[string]int64, len(snap.Counters))
	for name, v := range snap.Counters {
		if v != 0 {
			counters[name] = v
		}
	}
	reg.Reset()
	if counters["servd.cache_hits"] == 0 || counters["servd.store_commits"] == 0 {
		t.Errorf("service counters missing from benchmark snapshot: %v", counters)
	}
	report := benchTelemetryReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: map[string]benchTelemetryEntry{
			"ServdCacheHit": {
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Counters:    counters,
			},
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ServdCacheHit: %d iter, %d ns/op; wrote %s (%d bytes)", r.N, r.NsPerOp(), out, len(data))
}
