module cpsguard

go 1.22
