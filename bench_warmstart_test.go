// Warm-start and solve-cache benchmark report: `make bench-warm` runs
// TestBenchWarmstart with BENCH_WARM_OUT set, which times the cold/warm
// benchmark pairs programmatically and writes BENCH_warmstart.json (same
// cpsguard-bench/v1 envelope as BENCH_telemetry.json) pairing each ns/op
// with the warm vs cold pivot counters and cache hit/miss counts, so the
// speedup and the pivot-count delta that produces it live in one file.
package cpsguard

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/atomicio"
	"cpsguard/internal/core"
	"cpsguard/internal/impact"
	"cpsguard/internal/rng"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
	"cpsguard/internal/westgrid"
)

// BenchmarkImpactMatrixWarm is BenchmarkImpactMatrix with the solve memo and
// baseline-basis warm starting on, the configuration the experiment harness
// uses when -solve-cache/-warm-start are set: iteration 1 fills the cache
// with warm-started solves, iterations 2+ are pure cache hits — the steady
// state of a Monte-Carlo sweep revisiting the same scenario.
func BenchmarkImpactMatrixWarm(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	o := actors.RandomOwnership(g, 6, rng.New(1))
	an := &impact.Analysis{Graph: g, Ownership: o,
		Cache: solvecache.New(4096), WarmStart: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.ComputeMatrix(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAdversaryRound builds the ground-truth matrix from scratch and runs
// the exact SA search on it — the per-trial unit of the experiment sweeps —
// optionally sharing a solve cache across rounds.
func benchAdversaryRound(b *testing.B, cache *solvecache.Cache) {
	b.Helper()
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewScenario(g, 6, 3)
		s.Cache = cache
		s.WarmStart = cache != nil
		m, err := s.Truth()
		if err != nil {
			b.Fatal(err)
		}
		_, err = adversary.Solve(adversary.Config{
			Matrix: m, Targets: s.Targets, Budget: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryCold rebuilds the impact matrix and solves the SA each
// iteration with no cache — the pre-cache per-trial cost.
func BenchmarkAdversaryCold(b *testing.B) { benchAdversaryRound(b, nil) }

// BenchmarkAdversaryCached is the same round with one solve cache shared
// across iterations, as experiments share one across trials.
func BenchmarkAdversaryCached(b *testing.B) {
	benchAdversaryRound(b, solvecache.New(8192))
}

// TestBenchWarmstart is gated by BENCH_WARM_OUT: unset, it skips; set, it
// runs the cold/warm pairs, writes the JSON report to that path, and fails
// unless the warm impact-matrix build is at least 2x faster than the cold
// baseline recorded in the same file.
func TestBenchWarmstart(t *testing.T) {
	out := os.Getenv("BENCH_WARM_OUT")
	if out == "" {
		t.Skip("set BENCH_WARM_OUT=path to run the warm-start benchmark pairs")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"ImpactMatrix", BenchmarkImpactMatrix},
		{"ImpactMatrixWarm", BenchmarkImpactMatrixWarm},
		{"AdversaryCold", BenchmarkAdversaryCold},
		{"AdversaryCached", BenchmarkAdversaryCached},
	}
	reg := telemetry.Default()
	report := benchTelemetryReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		Platform:   runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: make(map[string]benchTelemetryEntry, len(benches)),
	}
	for _, bench := range benches {
		reg.Reset()
		r := testing.Benchmark(bench.fn)
		snap := reg.Snapshot(telemetry.SnapshotOptions{})
		counters := make(map[string]int64, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != 0 {
				counters[name] = v
			}
		}
		report.Benchmarks[bench.name] = benchTelemetryEntry{
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Counters:    counters,
		}
		t.Logf("%s: %d iter, %d ns/op, %d counters", bench.name, r.N, r.NsPerOp(), len(counters))
	}
	reg.Reset()

	cold := report.Benchmarks["ImpactMatrix"].NsPerOp
	warm := report.Benchmarks["ImpactMatrixWarm"].NsPerOp
	if warm <= 0 || cold < 2*warm {
		t.Errorf("ImpactMatrixWarm %d ns/op is not ≥2x faster than ImpactMatrix %d ns/op", warm, cold)
	} else {
		t.Logf("impact matrix speedup: %.1fx (cold %d → warm %d ns/op)",
			float64(cold)/float64(warm), cold, warm)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", out, len(data))
}
