package cpsguard

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd exercises the whole public surface on a small model:
// build → dispatch → ownership → impact matrix → adversary → game round.
func TestFacadeEndToEnd(t *testing.T) {
	g := NewGraph("facade")
	g.MustAddVertex(Vertex{ID: "gen1", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(Vertex{ID: "gen2", Supply: 100, SupplyCost: 3})
	g.MustAddVertex(Vertex{ID: "city", Demand: 120, Price: 10})
	g.MustAddEdge(Edge{ID: "l1", From: "gen1", To: "city", Capacity: 80, Kind: KindTransmission})
	g.MustAddEdge(Edge{ID: "l2", From: "gen2", To: "city", Capacity: 80, Kind: KindTransmission})

	res, err := Dispatch(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Welfare <= 0 {
		t.Fatalf("welfare = %v", res.Welfare)
	}

	o := RandomOwnership(g, 2, 1)
	if len(o) != 2 {
		t.Fatalf("ownership = %v", o)
	}

	an := &ImpactAnalysis{Graph: g, Ownership: Ownership{"l1": "A", "l2": "B"}}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		t.Fatal(err)
	}
	gain, _ := m.GainLoss()
	if gain <= 0 {
		t.Fatal("competitive duopoly should show attack gains")
	}

	plan, err := SolveAdversary(AdversaryConfig{
		Matrix:  m,
		Targets: UniformTargets(g.AssetIDs(), 1, 1),
		Budget:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Anticipated <= 0 || len(plan.Targets) != 1 {
		t.Fatalf("plan = %+v", plan)
	}

	s := NewScenario(g, 2, 5)
	round, err := PlayRound(s, GameConfig{
		AttackBudget: 1, DefenseBudgetPerActor: 2, PaSamples: 4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if round.Effectiveness < 0 {
		t.Fatalf("effectiveness = %v", round.Effectiveness)
	}
}

func TestFacadeWestgridAndOutage(t *testing.T) {
	g := Westgrid(WestgridOptions{Stress: true})
	if len(g.Edges) < 80 {
		t.Fatalf("westgrid too small: %d edges", len(g.Edges))
	}
	p := Outage("g2e:CA")
	if p.EdgeID != "g2e:CA" || p.Value != 0 {
		t.Fatalf("Outage = %+v", p)
	}
}

func TestFacadeExperimentRunnersWired(t *testing.T) {
	// Tiny smoke run of one figure through the facade.
	g := NewGraph("tiny")
	g.MustAddVertex(Vertex{ID: "g1", Supply: 50, SupplyCost: 2})
	g.MustAddVertex(Vertex{ID: "g2", Supply: 50, SupplyCost: 3})
	g.MustAddVertex(Vertex{ID: "c", Demand: 70, Price: 9})
	g.MustAddEdge(Edge{ID: "a", From: "g1", To: "c", Capacity: 40})
	g.MustAddEdge(Edge{ID: "b", From: "g2", To: "c", Capacity: 40})
	tb, err := Fig2(ExperimentConfig{Graph: g, Trials: 2, ActorGrid: []int{2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.FindSeries("gain") == nil {
		t.Fatal("fig2 missing gain series")
	}
	if math.IsNaN(tb.Series[0].Points[0].Y) {
		t.Fatal("NaN in experiment output")
	}
}

func TestProfitModelsExported(t *testing.T) {
	var m ProfitModel = LMPDivision{}
	if m.Name() != "lmp" {
		t.Fatal("LMPDivision not wired")
	}
	m = IterativeDivision{}
	if m.Name() != "iterative" {
		t.Fatal("IterativeDivision not wired")
	}
}

func TestFacadeExtensionsWired(t *testing.T) {
	g, err := GenerateGrid(GridgenConfig{Regions: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) < 20 {
		t.Fatalf("generated grid too small: %d edges", len(g.Edges))
	}
	mp, err := MultiPeriodDispatch(MultiPeriodConfig{
		Graph:   g,
		Periods: []Period{{Name: "a", Weight: 1}, {Name: "b", Weight: 2, DemandScale: 1.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mp.Total <= 0 {
		t.Fatalf("multiperiod welfare = %v", mp.Total)
	}
	sec, err := SecureDispatch(SecureConfig{
		Graph:         g,
		Contingencies: []string{g.Edges[0].ID},
		MinService:    0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sec.SecurityPremium < -1e-6 {
		t.Fatalf("premium = %v", sec.SecurityPremium)
	}
	s := NewScenario(g, 2, 3)
	rep, err := PlayRepeated(s, RepeatedConfig{
		Rounds: 2, AttackBudget: 1, DefenseBudgetPerActor: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rounds) != 2 {
		t.Fatalf("rounds = %d", len(rep.Rounds))
	}
	truth, err := s.Truth()
	if err != nil {
		t.Fatal(err)
	}
	h, err := PlanHardening(HardeningConfig{
		Matrix:     truth,
		Targets:    s.Targets,
		AttackProb: map[string]float64{g.Edges[0].ID: 1},
		Budget:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h == nil {
		t.Fatal("nil hardening")
	}
	if b := EdgeBetweenness(g); len(b) != len(g.Edges) {
		t.Fatalf("betweenness size = %d", len(b))
	}
}
