// Bench-with-telemetry harness: `make bench` runs TestBenchTelemetry with
// BENCH_OUT set, which executes the solver-layer benchmarks programmatically
// and pairs each timing with the telemetry counter deltas it produced
// (pivots per LP solve, nodes per branch and bound, evaluations per SA
// search, journal appends per trial). The result is a machine-readable
// BENCH_telemetry.json for tracking cost regressions alongside work counts.
package cpsguard

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/telemetry"
)

// benchSchema versions the BENCH_telemetry.json layout. Consumers (CI
// regression trackers, cpsreport-style analyzers) should reject files whose
// schema they do not recognize rather than guess; bump the suffix on any
// incompatible change.
const benchSchema = "cpsguard-bench/v1"

// benchTelemetryReport is the file-level envelope of BENCH_telemetry.json.
type benchTelemetryReport struct {
	Schema     string                         `json:"schema"`
	GoVersion  string                         `json:"go_version"`
	Platform   string                         `json:"platform"`
	Benchmarks map[string]benchTelemetryEntry `json:"benchmarks"`
}

// benchTelemetryEntry is one benchmark's timing plus the deterministic work
// counters accumulated across all its iterations.
type benchTelemetryEntry struct {
	Iterations  int              `json:"iterations"`
	NsPerOp     int64            `json:"ns_per_op"`
	AllocsPerOp int64            `json:"allocs_per_op"`
	BytesPerOp  int64            `json:"bytes_per_op"`
	Counters    map[string]int64 `json:"counters,omitempty"`
}

// TestBenchTelemetry is gated by BENCH_OUT: unset, it skips (so plain
// `go test ./...` stays fast); set, it benchmarks the solver layer and
// writes the JSON report to that path. The registry is reset around each
// benchmark so counters attribute to exactly one workload.
func TestBenchTelemetry(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=path to run the telemetry benchmark sweep")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"LPSolve", BenchmarkLPSolve},
		{"MILPSolve", BenchmarkMILPSolve},
		{"AdversaryResilient", BenchmarkAdversaryResilient},
		{"ExperimentsTrial", BenchmarkExperimentsTrial},
	}
	reg := telemetry.Default()
	report := benchTelemetryReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		Platform:   runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: make(map[string]benchTelemetryEntry, len(benches)),
	}
	for _, bench := range benches {
		reg.Reset()
		r := testing.Benchmark(bench.fn)
		snap := reg.Snapshot(telemetry.SnapshotOptions{})
		counters := make(map[string]int64, len(snap.Counters))
		for name, v := range snap.Counters {
			if v != 0 {
				counters[name] = v
			}
		}
		report.Benchmarks[bench.name] = benchTelemetryEntry{
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Counters:    counters,
		}
		t.Logf("%s: %d iter, %d ns/op, %d counters", bench.name, r.N, r.NsPerOp(), len(counters))
	}
	reg.Reset()
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", out, len(data))
}

// TestBenchTelemetrySchema pins the file envelope: the schema tag and the
// exact top-level key set. Downstream trackers key on these names; renaming
// one is a breaking change that must bump benchSchema.
func TestBenchTelemetrySchema(t *testing.T) {
	report := benchTelemetryReport{
		Schema: benchSchema, GoVersion: "go0.0", Platform: "test/none",
		Benchmarks: map[string]benchTelemetryEntry{
			"LPSolve": {Iterations: 1, NsPerOp: 2, Counters: map[string]int64{"lp.pivots": 3}},
		},
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"schema", "go_version", "platform", "benchmarks"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("envelope missing key %q", key)
		}
	}
	if len(raw) != 4 {
		t.Errorf("envelope has %d top-level keys, want 4 (schema change requires a version bump)", len(raw))
	}
	var back benchTelemetryReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != benchSchema || back.Benchmarks["LPSolve"].Counters["lp.pivots"] != 3 {
		t.Errorf("round trip mangled report: %+v", back)
	}
}
