// Quickstart: build a four-node energy system, dispatch it to the social
// welfare optimum, attack a line, and read the per-actor financial impact.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cpsguard"
)

func main() {
	log.SetFlags(0)

	// A cheap and an expensive generator compete to serve one city.
	g := cpsguard.NewGraph("quickstart")
	g.MustAddVertex(cpsguard.Vertex{ID: "hydro", Supply: 100, SupplyCost: 5})
	g.MustAddVertex(cpsguard.Vertex{ID: "gasplant", Supply: 100, SupplyCost: 40})
	g.MustAddVertex(cpsguard.Vertex{ID: "city", Demand: 120, Price: 100})
	g.MustAddEdge(cpsguard.Edge{
		ID: "hydro-line", From: "hydro", To: "city",
		Capacity: 80, Loss: 0.03, Cost: 2, Kind: cpsguard.KindTransmission,
	})
	g.MustAddEdge(cpsguard.Edge{
		ID: "gas-line", From: "gasplant", To: "city",
		Capacity: 80, Loss: 0.02, Cost: 2, Kind: cpsguard.KindTransmission,
	})

	// 1. Social-welfare dispatch (the paper's Eq. 1–7).
	res, err := cpsguard.Dispatch(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("welfare: %.0f   city price λ = %.1f\n", res.Welfare, res.Price["city"])
	fmt.Printf("flows: hydro-line %.1f, gas-line %.1f\n\n",
		res.Flow["hydro-line"], res.Flow["gas-line"])

	// 2. Two actors: H owns the hydro chain, G the gas chain.
	own := cpsguard.Ownership{"hydro-line": "H", "gas-line": "G"}
	an := &cpsguard.ImpactAnalysis{Graph: g, Ownership: own}
	base, _, err := an.Baseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline profits: H=%.0f  G=%.0f\n\n", base["H"], base["G"])

	// 3. Attack the hydro line (capacity → 0) and measure the impact.
	deltas, dWelfare, err := an.Of(cpsguard.Outage("hydro-line"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attack: hydro-line outage")
	fmt.Printf("  system welfare change: %.0f\n", dWelfare)
	fmt.Printf("  impact on H: %+.0f   (owner loses)\n", deltas["H"])
	fmt.Printf("  impact on G: %+.0f   (competitor gains the market)\n", deltas["G"])
}
