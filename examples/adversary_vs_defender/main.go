// adversary_vs_defender: play full game rounds at increasing knowledge
// noise and watch both sides degrade — the dynamics behind the paper's
// Figures 3–5, including the deception-defense insight of Figure 4 (a noisy
// adversary stays confident while her realized profit collapses).
//
// Run with:
//
//	go run ./examples/adversary_vs_defender
package main

import (
	"fmt"
	"log"

	"cpsguard"
)

func main() {
	log.SetFlags(0)

	g := cpsguard.Westgrid(cpsguard.WestgridOptions{Stress: true})
	scn := cpsguard.NewScenario(g, 6, 7)

	fmt.Println("six actors on the stressed western interconnect (mean of 12 rounds)")
	fmt.Printf("%-8s %14s %14s %14s %14s\n",
		"sigma", "anticipated", "realized", "vs defense", "effectiveness")

	const rounds = 12
	for _, sigma := range []float64{0, 0.2, 0.5, 1.0} {
		var ant, und, def, eff float64
		for i := 0; i < rounds; i++ {
			res, err := cpsguard.PlayRound(scn, cpsguard.GameConfig{
				AttackBudget:          3,
				AttackerSigma:         sigma,
				DefenderSigma:         sigma,
				SpeculatedSigma:       sigma,
				DefenseBudgetPerActor: 2,
				Collaborative:         true,
				PaSamples:             12,
				NoiseMode:             cpsguard.MatrixNoise,
				Seed:                  uint64(100 + i),
			})
			if err != nil {
				log.Fatal(err)
			}
			ant += res.Anticipated / rounds
			und += res.RealizedUndefended / rounds
			def += res.RealizedDefended / rounds
			eff += res.Effectiveness / rounds
		}
		fmt.Printf("%-8.2f %14.0f %14.0f %14.0f %14.0f\n", sigma, ant, und, def, eff)
	}

	fmt.Println("\nreading: anticipated stays high as σ grows (the adversary can't")
	fmt.Println("tell her model degraded) while realized profit falls — the paper's")
	fmt.Println("argument that deception is a viable defense (Fig. 4).")
}
