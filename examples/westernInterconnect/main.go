// westernInterconnect: load the paper's six-state gas-electric model
// (Section III-A), compute the full impact matrix under a six-actor random
// ownership, and rank the most damaging — and the most profitable — assets.
//
// Run with:
//
//	go run ./examples/westernInterconnect
package main

import (
	"fmt"
	"log"
	"sort"

	"cpsguard"
)

func main() {
	log.SetFlags(0)

	g := cpsguard.Westgrid(cpsguard.WestgridOptions{Stress: true})
	fmt.Println(g)

	scn := cpsguard.NewScenario(g, 6, 42)
	m, err := scn.Truth()
	if err != nil {
		log.Fatal(err)
	}

	// Rank targets by system damage.
	type ranked struct {
		id     string
		damage float64 // −Δwelfare
		gain   float64 // largest single-actor gain
		winner string
	}
	var rows []ranked
	for _, t := range m.Targets {
		r := ranked{id: t, damage: -m.WelfareDelta[t]}
		for _, a := range m.Actors {
			if v := m.Get(a, t); v > r.gain {
				r.gain = v
				r.winner = a
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].damage > rows[j].damage })

	fmt.Println("\ntop 10 most damaging single-asset attacks:")
	fmt.Printf("  %-18s %14s %14s %8s\n", "asset", "system damage", "best gain", "winner")
	for _, r := range rows[:10] {
		fmt.Printf("  %-18s %14.0f %14.0f %8s\n", r.id, r.damage, r.gain, r.winner)
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].gain > rows[j].gain })
	fmt.Println("\ntop 5 attacks by single-actor profit (the SA's shopping list):")
	for _, r := range rows[:5] {
		fmt.Printf("  %-18s winner %s gains %14.0f (system loses %.0f)\n",
			r.id, r.winner, r.gain, r.damage)
	}

	gain, loss := m.GainLoss()
	fmt.Printf("\ntotal gains %+.0f, total losses %+.0f (zero-sum against welfare: %+.0f)\n",
		gain, loss, gain+loss)
}
