// collaboration: demonstrate cost-shared defense (Section II-F3) on the
// exact scenario the paper motivates — a cheap shared supplier whose outage
// hurts every buyer, but whose owner has no incentive to defend it alone.
//
// Run with:
//
//	go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"cpsguard"
	"cpsguard/internal/defense"
)

func main() {
	log.SetFlags(0)

	// One cheap source serves two retail actors; a pricey backup exists.
	// Attacking the cheap source raises costs for both buyers.
	g := cpsguard.NewGraph("shared-supplier")
	g.MustAddVertex(cpsguard.Vertex{ID: "cheap", Supply: 100, SupplyCost: 5})
	g.MustAddVertex(cpsguard.Vertex{ID: "backup", Supply: 100, SupplyCost: 60})
	g.MustAddVertex(cpsguard.Vertex{ID: "hub"})
	g.MustAddVertex(cpsguard.Vertex{ID: "cityA", Demand: 40, Price: 100})
	g.MustAddVertex(cpsguard.Vertex{ID: "cityB", Demand: 40, Price: 100})
	g.MustAddEdge(cpsguard.Edge{ID: "supply", From: "cheap", To: "hub", Capacity: 90, Cost: 1})
	g.MustAddEdge(cpsguard.Edge{ID: "bsupply", From: "backup", To: "hub", Capacity: 90, Cost: 1})
	g.MustAddEdge(cpsguard.Edge{ID: "retailA", From: "hub", To: "cityA", Capacity: 50, Cost: 1})
	g.MustAddEdge(cpsguard.Edge{ID: "retailB", From: "hub", To: "cityB", Capacity: 50, Cost: 1})

	own := cpsguard.Ownership{
		"supply": "S", "bsupply": "S", "retailA": "A", "retailB": "B",
	}
	an := &cpsguard.ImpactAnalysis{Graph: g, Ownership: own}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("impact of attacking the cheap supply line:")
	for _, a := range m.Actors {
		fmt.Printf("  %-8s %+10.0f\n", a, m.Get(a, "supply"))
	}

	pa := map[string]float64{"supply": 1} // defenders expect this attack
	costs := defense.UniformCosts([]string{"supply"}, 2500)

	// Independent: only the owner S may defend, and S gains from the
	// outage (its backup plant wins the market) — nobody defends.
	invs, err := defense.PlanAllIndependent(m, own, pa, costs, 2500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nindependent defense: %d assets protected\n", len(defense.Union(invs)))

	// Collaborative: buyers A and B pool shares proportional to their
	// losses (Eq. 15) and defend the supplier they do not own.
	cinv, err := defense.PlanCollaborative(defense.CollaborativeConfig{
		Matrix: m, Ownership: own,
		AttackProb: defense.SharedAttackProb(m, pa),
		Costs:      costs,
		Budget:     map[string]float64{"A": 2000, "B": 2000, "S": 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collaborative defense: %d assets protected\n", len(cinv.Defended))
	for a, shares := range cinv.Share {
		for t, s := range shares {
			fmt.Printf("  %s pays %.0f toward defending %s\n", a, s, t)
		}
	}
}
