// timedomain: the paper's Section II-D5 extension in action — a day of
// three demand periods on the six-state model, a peak-hour attack on the
// California gas-electric coupling, and generator ramp limits that slow
// the recovery. Also demonstrates the repeated game: defenders that learn
// the adversary's targets from observed history instead of a speculative
// model.
//
// Run with:
//
//	go run ./examples/timedomain
package main

import (
	"fmt"
	"log"
	"strings"

	"cpsguard"
	"cpsguard/internal/impact"
	"cpsguard/internal/multiperiod"
	"cpsguard/internal/repeated"
)

func main() {
	log.SetFlags(0)

	// The stressed model burns gas for power (the coupling the attack
	// below exploits); period scales are relative to the stressed peak.
	g := cpsguard.Westgrid(cpsguard.WestgridOptions{Stress: true})

	day := []multiperiod.Period{
		{Name: "night", Weight: 8, DemandScale: 0.6},
		{Name: "day", Weight: 10, DemandScale: 0.85},
		{Name: "peak", Weight: 6, DemandScale: 1.0},
	}
	ramps := map[string]float64{
		"gen:WA:hydro":   150, // hydro ramps fast but not infinitely
		"gen:AZ:nuclear": 20,  // nuclear barely ramps
		"gen:UT:coal":    40,
	}

	base, err := multiperiod.Dispatch(multiperiod.Config{
		Graph: g, Periods: day, Ramp: ramps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline day (weighted welfare):", int(base.Total))
	for _, p := range base.Periods {
		fmt.Printf("  %-6s welfare %10.0f  CA gas-fired output %6.1f\n",
			p.Name, p.Welfare, p.Flow["g2e:CA"])
	}

	// A peak-hour outage of California's gas-fired fleet.
	delta, err := multiperiod.ImpactOf(multiperiod.Config{
		Graph: g, Periods: day, Ramp: ramps,
	}, multiperiod.TimedAttack{
		Perturbation: impact.Outage("g2e:CA"), From: 2, To: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npeak-hour g2e:CA outage impact: %0.f (duration-weighted)\n", delta)

	// Repeated game: defenders learn from four rounds of attacks.
	scn := cpsguard.NewScenario(cpsguard.Westgrid(cpsguard.WestgridOptions{Stress: true}), 4, 11)
	res, err := repeated.Play(scn, repeated.Config{
		Rounds:                5,
		AttackBudget:          2,
		DefenseBudgetPerActor: 3,
		Smoothing:             0.8,
		Collaborative:         true,
		Seed:                  11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrepeated game (collaborative defenders learning from history):")
	for i, r := range res.Rounds {
		fmt.Printf("  round %d: attacked %-32s profit %10.0f  averted %10.0f\n",
			i+1, strings.Join(r.Attacked, "+"), r.AdversaryProfit, r.Averted)
	}
	fmt.Printf("  totals: adversary %0.f, averted %0.f\n",
		res.TotalAdversaryProfit, res.TotalAverted)
}
