// Benchmarks regenerating every figure of the paper's evaluation plus the
// ablations called out in DESIGN.md §6. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig* benches use reduced grids (the full paper grids are run by
// cmd/cpsexp and recorded in EXPERIMENTS.md); the point here is tracked,
// repeatable cost per experiment pipeline, not the figures themselves.
package cpsguard

import (
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/adversary"
	"cpsguard/internal/core"
	"cpsguard/internal/dcopf"
	"cpsguard/internal/defense"
	"cpsguard/internal/experiments"
	"cpsguard/internal/flow"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
	"cpsguard/internal/milp"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/westgrid"
)

// benchCfg is the reduced experiment grid used by the Fig* benches.
func benchCfg() experiments.Config {
	return experiments.Config{
		Trials:    2,
		Seed:      1,
		ActorGrid: []int{2, 6},
		SigmaGrid: []float64{0, 0.3},
		PaSamples: 6,
		NoiseMode: core.MatrixNoise,
	}
}

// BenchmarkWestgridDispatch measures the cost of one social-welfare
// dispatch of the stressed six-state model (Figure 1's substrate).
func BenchmarkWestgridDispatch(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Dispatch(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImpactMatrix measures a full ground-truth impact matrix on the
// stressed model (86 single-asset outages), the inner loop of every
// experiment.
func BenchmarkImpactMatrix(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	o := actors.RandomOwnership(g, 6, rng.New(1))
	an := &impact.Analysis{Graph: g, Ownership: o}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.ComputeMatrix(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFig(b *testing.B, run func(experiments.Config) (*Table, error)) {
	b.Helper()
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (gain/loss vs actors).
func BenchmarkFig2(b *testing.B) { benchFig(b, experiments.Fig2) }

// BenchmarkFig3 regenerates Figure 3 (SA profit vs noise).
func BenchmarkFig3(b *testing.B) { benchFig(b, experiments.Fig3) }

// BenchmarkFig4 regenerates Figure 4 (anticipated vs observed).
func BenchmarkFig4(b *testing.B) { benchFig(b, experiments.Fig4) }

// BenchmarkFig5 regenerates Figure 5 (defense effectiveness vs noise).
func BenchmarkFig5(b *testing.B) { benchFig(b, experiments.Fig5) }

// BenchmarkFig6 regenerates Figure 6 (collaborative vs independent).
func BenchmarkFig6(b *testing.B) { benchFig(b, experiments.Fig6) }

// BenchmarkFig7 regenerates Figure 7 (collaboration benefit vs actors).
func BenchmarkFig7(b *testing.B) { benchFig(b, experiments.Fig7) }

// BenchmarkExtBaselineComparison regenerates the economic-vs-topological
// defense comparison (extension A).
func BenchmarkExtBaselineComparison(b *testing.B) { benchFig(b, experiments.BaselineComparison) }

// BenchmarkExtDeception regenerates the deception-defense curve
// (extension B).
func BenchmarkExtDeception(b *testing.B) { benchFig(b, experiments.Deception) }

// BenchmarkExtAttackVectors regenerates the attack-vector family comparison
// (extension C).
func BenchmarkExtAttackVectors(b *testing.B) { benchFig(b, experiments.AttackVectors) }

// BenchmarkExtSecurityPremium regenerates the N-1 security-premium trade-off
// (extension D).
func BenchmarkExtSecurityPremium(b *testing.B) { benchFig(b, experiments.SecurityPremium) }

// BenchmarkExtHardening regenerates the binary-vs-graduated defense
// comparison (extension E).
func BenchmarkExtHardening(b *testing.B) { benchFig(b, experiments.HardeningComparison) }

// --- Ablation: strategic adversary solvers (DESIGN.md §6).

func adversaryBenchConfig(b *testing.B) adversary.Config {
	b.Helper()
	g := westgrid.Build(westgrid.Options{Stress: true})
	s := core.NewScenario(g, 6, 3)
	m, err := s.Truth()
	if err != nil {
		b.Fatal(err)
	}
	return adversary.Config{
		Matrix:  m,
		Targets: adversary.UniformTargets(g.AssetIDs(), 1, 1),
		Budget:  6,
	}
}

// BenchmarkAdversaryExact measures the exact B&B target search on the full
// 86-asset, 6-actor instance (the paper's Experiment 2 configuration).
func BenchmarkAdversaryExact(b *testing.B) {
	cfg := adversaryBenchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryGreedy measures the greedy heuristic on the same
// instance.
func BenchmarkAdversaryGreedy(b *testing.B) {
	cfg := adversaryBenchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SolveGreedy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdversaryMILP measures the generic linearized MILP oracle on a
// reduced instance (it is the cross-check, not the production path).
func BenchmarkAdversaryMILP(b *testing.B) {
	cfg := adversaryBenchConfig(b)
	cfg.Targets = cfg.Targets[:12]
	cfg.Budget = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SolveMILP(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: profit-division models.

func profitBenchSetup(b *testing.B) (*Graph, *flow.Result, Ownership) {
	b.Helper()
	g := westgrid.Build(westgrid.Options{Stress: true})
	r, err := flow.Dispatch(g)
	if err != nil {
		b.Fatal(err)
	}
	return g, r, actors.RandomOwnership(g, 6, rng.New(2))
}

// BenchmarkProfitDivisionLMP measures the dual-based settlement (no extra
// LP solves).
func BenchmarkProfitDivisionLMP(b *testing.B) {
	g, r, o := profitBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (actors.LMPDivision{}).Divide(g, r, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfitDivisionIterative measures the paper's literal
// capacity-probing relaxation (one LP re-solve per flow-carrying edge).
func BenchmarkProfitDivisionIterative(b *testing.B) {
	g, r, o := profitBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (actors.IterativeDivision{}).Divide(g, r, o); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: defense planners.

func defenseBenchSetup(b *testing.B) (*impact.Matrix, Ownership, map[string]float64) {
	b.Helper()
	g := westgrid.Build(westgrid.Options{Stress: true})
	s := core.NewScenario(g, 6, 5)
	m, err := s.Truth()
	if err != nil {
		b.Fatal(err)
	}
	pa := map[string]float64{}
	for _, t := range m.Targets {
		pa[t] = 0.25
	}
	return m, s.Ownership, pa
}

// BenchmarkDefenseIndependent measures all-actor independent planning
// (Eqs. 12–14) on the full model.
func BenchmarkDefenseIndependent(b *testing.B) {
	m, o, pa := defenseBenchSetup(b)
	costs := defense.UniformCosts(m.Targets, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := defense.PlanAllIndependent(m, o, pa, costs, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDefenseCollaborative measures cost-shared planning (Eqs. 15–18)
// on the full model.
func BenchmarkDefenseCollaborative(b *testing.B) {
	m, o, pa := defenseBenchSetup(b)
	costs := defense.UniformCosts(m.Targets, 1)
	budgets := map[string]float64{}
	for _, a := range m.Actors {
		budgets[a] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := defense.PlanCollaborative(defense.CollaborativeConfig{
			Matrix: m, Ownership: o,
			AttackProb: defense.SharedAttackProb(m, pa),
			Costs:      costs, Budget: budgets,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel scaling of the Monte-Carlo trial loop.

func benchTrialWork() func(int) (float64, error) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	return func(i int) (float64, error) {
		o := actors.RandomOwnership(g, 6, rng.Derive(9, uint64(i)))
		an := &impact.Analysis{Graph: g, Ownership: o,
			Parallel: parallel.Options{Workers: 1}}
		m, err := an.ComputeMatrix(westgrid.LongHaulAssets(g))
		if err != nil {
			return 0, err
		}
		gain, _ := m.GainLoss()
		return gain, nil
	}
}

// BenchmarkTrialsSerial runs 8 ownership trials on one worker.
func BenchmarkTrialsSerial(b *testing.B) {
	work := benchTrialWork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := parallel.MeanOf(8, parallel.Options{Workers: 1}, work); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrialsParallel runs the same 8 trials across all cores.
func BenchmarkTrialsParallel(b *testing.B) {
	work := benchTrialWork()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := parallel.MeanOf(8, parallel.Options{}, work); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: LP simplex methods (rows vs implicit bounds).

func benchLPMethod(b *testing.B, m lp.Method) {
	b.Helper()
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Method: m}})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPMethodRows dispatches westgrid with upper bounds lowered onto
// explicit rows.
func BenchmarkLPMethodRows(b *testing.B) { benchLPMethod(b, lp.MethodRows) }

// BenchmarkLPMethodBounded dispatches westgrid with the bounded-variable
// simplex.
func BenchmarkLPMethodBounded(b *testing.B) { benchLPMethod(b, lp.MethodBounded) }

// --- Scaling with system size (Section II-E4's computational-difficulty
// discussion), on synthetic systems from internal/gridgen.

func benchScaling(b *testing.B, regions int) {
	b.Helper()
	g, err := gridgen.Build(gridgen.Config{Regions: regions, Seed: 1, Stress: true})
	if err != nil {
		b.Fatal(err)
	}
	o := actors.RandomOwnership(g, regions, rng.New(1))
	an := &impact.Analysis{Graph: g, Ownership: o}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := adversary.Config{
		Matrix:  m,
		Targets: adversary.UniformTargets(g.AssetIDs(), 1, 1),
		Budget:  6,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.Solve(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalingAdversary6 solves the SA on a 6-region synthetic system.
func BenchmarkScalingAdversary6(b *testing.B) { benchScaling(b, 6) }

// BenchmarkScalingAdversary12 solves the SA on a 12-region system.
func BenchmarkScalingAdversary12(b *testing.B) { benchScaling(b, 12) }

// BenchmarkScalingAdversary24 solves the SA on a 24-region system.
func BenchmarkScalingAdversary24(b *testing.B) { benchScaling(b, 24) }

// BenchmarkScalingDispatch48 dispatches a 48-region synthetic system
// (~600 edges) — the LP substrate's scaling point.
func BenchmarkScalingDispatch48(b *testing.B) {
	g, err := gridgen.Build(gridgen.Config{Regions: 48, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flow.Dispatch(g); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver-layer benchmarks (DESIGN.md §10): the units the telemetry
// instruments meter, benchmarked directly so BENCH_telemetry.json can pair
// ns/op with pivot/node counts.

// benchLPProblem builds a representative dense LP: a transport-style
// minimum-cost assignment with capacities, ~60 variables and ~28 rows.
func benchLPProblem() *lp.Problem {
	const src, dst = 6, 10
	p := lp.NewProblem()
	vars := make([][]int, src)
	for i := 0; i < src; i++ {
		vars[i] = make([]int, dst)
		for j := 0; j < dst; j++ {
			cost := float64((i*7+j*13)%11 + 1)
			vars[i][j] = p.AddVariable("x", cost, 40)
		}
	}
	for i := 0; i < src; i++ {
		coefs := make([]lp.Coef, dst)
		for j := 0; j < dst; j++ {
			coefs[j] = lp.Coef{Var: vars[i][j], Value: 1}
		}
		p.AddConstraint(lp.Constraint{Coefs: coefs, Sense: lp.LE, RHS: 100})
	}
	for j := 0; j < dst; j++ {
		coefs := make([]lp.Coef, src)
		for i := 0; i < src; i++ {
			coefs[i] = lp.Coef{Var: vars[i][j], Value: 1}
		}
		p.AddConstraint(lp.Constraint{Coefs: coefs, Sense: lp.GE, RHS: 30})
	}
	return p
}

// BenchmarkLPSolve measures one direct lp.Solve on the representative LP.
func BenchmarkLPSolve(b *testing.B) {
	p := benchLPProblem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkMILPSolve measures branch and bound on a 14-binary knapsack-style
// problem over the same LP engine.
func BenchmarkMILPSolve(b *testing.B) {
	prob := milp.Problem{LP: lp.NewProblem()}
	for j := 0; j < 14; j++ {
		v := prob.LP.AddVariable("x", -float64((j*17)%9+1), 1)
		prob.Binary = append(prob.Binary, v)
	}
	coefs := make([]lp.Coef, 14)
	for j := range coefs {
		coefs[j] = lp.Coef{Var: j, Value: float64((j*5)%7 + 1)}
	}
	prob.LP.AddConstraint(lp.Constraint{Coefs: coefs, Sense: lp.LE, RHS: 18})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := milp.Solve(prob, milp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// BenchmarkAdversaryResilient measures the production SA entry point (the
// fallback-chain wrapper around the exact search) on the full instance.
func BenchmarkAdversaryResilient(b *testing.B) {
	cfg := adversaryBenchConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := adversary.SolveResilient(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentsTrial measures one full experiment trial — dispatch,
// impact, Pa estimation, defense, and settlement — the unit the checkpoint
// journal records.
func BenchmarkExperimentsTrial(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewScenario(g, 4, uint64(i))
		_, err := core.PlayRound(s, core.GameConfig{
			AttackBudget:          1,
			DefenderSigma:         0.2,
			SpeculatedSigma:       0.2,
			DefenseBudgetPerActor: 3,
			PaSamples:             4,
			NoiseMode:             core.MatrixNoise,
			Seed:                  uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: transport dispatch vs DC-OPF physics (DESIGN.md §6).

// BenchmarkDCOPFWestgrid solves the Kirchhoff-constrained dispatch of the
// stressed six-state model (contrast substrate for the paper's
// freely-routed transport model).
func BenchmarkDCOPFWestgrid(b *testing.B) {
	g := westgrid.Build(westgrid.Options{Stress: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dcopf.Solve(g, dcopf.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
