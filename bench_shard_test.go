// Shard-merge benchmark report: `make bench-shard` runs TestBenchShard with
// BENCH_SHARD_OUT set, which times BenchmarkShardMerge programmatically and
// writes BENCH_shard.json (same cpsguard-bench/v1 envelope as
// BENCH_telemetry.json) pairing the merge's ns/op with its validation
// counters, so merge throughput regressions and validation-work drift land
// in one reviewable file.
package cpsguard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/checkpoint"
	"cpsguard/internal/shard"
	"cpsguard/internal/telemetry"
)

// buildShardFleet writes an n-way shard layout with trialsPerShard journaled
// trials each — the merge benchmark's fixture.
func buildShardFleet(tb testing.TB, parent string, n, trialsPerShard int) {
	tb.Helper()
	for i := 0; i < n; i++ {
		a := shard.Assignment{Index: i, Count: n}
		dir := filepath.Join(parent, a.DirName())
		j, err := checkpoint.Create(filepath.Join(dir, shard.JournalName), checkpoint.Options{NoSync: true})
		if err != nil {
			tb.Fatal(err)
		}
		for k := 0; k < trialsPerShard; k++ {
			trial := k*n + i // the k-th trial this shard owns
			id := checkpoint.TrialID(7, fmt.Sprintf("bench point %d", trial%8), trial)
			if err := j.Append(id, true, map[string]float64{"profit": float64(trial)}, ""); err != nil {
				tb.Fatal(err)
			}
		}
		m := shard.NewManifest(a, 7, "bench")
		m.JournalRecords = trialsPerShard
		m.Executed = trialsPerShard
		m.Completed = true
		if err := j.Close(); err != nil {
			tb.Fatal(err)
		}
		m.StampJournal(dir)
		if err := m.Write(dir); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkShardMerge times the full merge path — discovery, manifest and
// CRC validation, partition audit, replay union — over an 8-way fleet of
// 250-trial journals (2000 records per op).
func BenchmarkShardMerge(b *testing.B) {
	parent := b.TempDir()
	buildShardFleet(b, parent, 8, 250)
	dirs, err := shard.DiscoverShards(parent)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: "bench"})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trials != 2000 {
			b.Fatalf("merged %d trials, want 2000", res.Trials)
		}
	}
}

// TestBenchShard is gated by BENCH_SHARD_OUT: unset, it skips; set, it runs
// BenchmarkShardMerge and writes the JSON report to that path.
func TestBenchShard(t *testing.T) {
	out := os.Getenv("BENCH_SHARD_OUT")
	if out == "" {
		t.Skip("set BENCH_SHARD_OUT=path to run the shard-merge benchmark")
	}
	reg := telemetry.Default()
	reg.Reset()
	r := testing.Benchmark(BenchmarkShardMerge)
	snap := reg.Snapshot(telemetry.SnapshotOptions{})
	counters := make(map[string]int64, len(snap.Counters))
	for name, v := range snap.Counters {
		if v != 0 {
			counters[name] = v
		}
	}
	reg.Reset()
	report := benchTelemetryReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: map[string]benchTelemetryEntry{
			"ShardMerge": {
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Counters:    counters,
			},
		},
	}
	if counters["shard.merges"] == 0 || counters["shard.merged_records"] == 0 {
		t.Errorf("merge counters missing from benchmark snapshot: %v", counters)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ShardMerge: %d iter, %d ns/op; wrote %s (%d bytes)", r.N, r.NsPerOp(), out, len(data))
}
