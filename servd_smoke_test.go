// End-to-end smoke of the cpsservd binary: build it, start it on an
// ephemeral port, submit the same scenario twice — the second response must
// be a cache hit and the downloaded artifact byte-identical to the first —
// then SIGTERM it and require a clean drain (exit 0). `make servd-smoke`
// runs this; it is also part of the ordinary test suite (skipped in -short).
package cpsguard

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestServdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the cpsservd binary; skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cpsservd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/cpsservd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build cpsservd: %v\n%s", err, out)
	}

	storeDir := filepath.Join(dir, "store")
	cmd := exec.Command(bin, "-addr", "localhost:0", "-store", storeDir,
		"-workers", "1", "-log-level", "warn", "-drain-timeout", "30s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	lineCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 256)
		var line []byte
		for {
			n, err := stdout.Read(buf)
			line = append(line, buf[:n]...)
			if i := bytes.IndexByte(line, '\n'); i >= 0 || err != nil {
				if i >= 0 {
					line = line[:i]
				}
				lineCh <- string(line)
				io.Copy(io.Discard, stdout)
				return
			}
		}
	}()
	var baseURL string
	select {
	case line := <-lineCh:
		i := strings.Index(line, "http://")
		j := strings.IndexByte(line[i+7:], ' ')
		if i < 0 || j < 0 {
			t.Fatalf("cannot parse listen line %q", line)
		}
		baseURL = line[i : i+7+j]
	case <-time.After(30 * time.Second):
		t.Fatal("cpsservd never announced its address")
	}

	body := `{"figure":"5","quick":true,"seed":7}`
	post := func() (cached bool, artifactURL string) {
		t.Helper()
		resp, err := http.Post(baseURL+"/scenarios?wait=1", "application/json",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit: %d %s", resp.StatusCode, data)
		}
		var st struct {
			Status    string `json:"status"`
			Cached    bool   `json:"cached"`
			Artifacts []struct {
				URL string `json:"url"`
			} `json:"artifacts"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad status body: %v: %s", err, data)
		}
		if st.Status != "done" || len(st.Artifacts) == 0 {
			t.Fatalf("run not done: %s", data)
		}
		return st.Cached, st.Artifacts[0].URL
	}
	fetch := func(url string) []byte {
		t.Helper()
		resp, err := http.Get(baseURL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact fetch: %d", resp.StatusCode)
		}
		return data
	}

	cached, url1 := post()
	if cached {
		t.Fatal("first submit claims a cache hit on an empty store")
	}
	first := fetch(url1)
	cached, url2 := post()
	if !cached {
		t.Fatal("second identical submit was not a cache hit")
	}
	second := fetch(url2)
	if !bytes.Equal(first, second) {
		t.Fatalf("cache hit served different bytes:\nfirst:\n%s\nsecond:\n%s", first, second)
	}

	// Graceful drain on SIGTERM: clean exit, index intact on disk.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cpsservd did not exit cleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cpsservd did not drain within 30s of SIGTERM")
	}
	if _, err := os.Stat(filepath.Join(storeDir, "index.json")); err != nil {
		t.Fatalf("store index missing after drain: %v", err)
	}
}
