package cpsguard_test

import (
	"fmt"
	"sort"

	"cpsguard"
)

// twoChainSystem builds the canonical competitor-elimination setup used
// throughout the examples: two generation chains into one city.
func twoChainSystem() *cpsguard.Graph {
	g := cpsguard.NewGraph("example")
	g.MustAddVertex(cpsguard.Vertex{ID: "cheap", Supply: 100, SupplyCost: 2})
	g.MustAddVertex(cpsguard.Vertex{ID: "dear", Supply: 100, SupplyCost: 3})
	g.MustAddVertex(cpsguard.Vertex{ID: "city", Demand: 120, Price: 10})
	g.MustAddEdge(cpsguard.Edge{ID: "lineA", From: "cheap", To: "city", Capacity: 80})
	g.MustAddEdge(cpsguard.Edge{ID: "lineB", From: "dear", To: "city", Capacity: 80})
	return g
}

// ExampleDispatch shows the social-welfare dispatch of Eqs. 1–7.
func ExampleDispatch() {
	g := twoChainSystem()
	res, err := cpsguard.Dispatch(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("welfare: %.0f\n", res.Welfare)
	fmt.Printf("city price: %.0f\n", res.Price["city"])
	fmt.Printf("flows: A=%.0f B=%.0f\n", res.Flow["lineA"], res.Flow["lineB"])
	// Output:
	// welfare: 920
	// city price: 3
	// flows: A=80 B=40
}

// ExampleImpactAnalysis_Of measures an attack's per-actor impact
// (Section II-D3): the attacked owner loses, the competitor gains.
func ExampleImpactAnalysis_Of() {
	an := &cpsguard.ImpactAnalysis{
		Graph:     twoChainSystem(),
		Ownership: cpsguard.Ownership{"lineA": "A", "lineB": "B"},
	}
	deltas, dWelfare, err := an.Of(cpsguard.Outage("lineA"))
	if err != nil {
		panic(err)
	}
	fmt.Printf("system welfare change: %.0f\n", dWelfare)
	fmt.Printf("A (attacked): %.0f\n", deltas["A"])
	fmt.Printf("B (rival):    %.0f\n", deltas["B"])
	// Output:
	// system welfare change: -360
	// A (attacked): -920
	// B (rival):    560
}

// ExampleSolveAdversary shows the strategic adversary of Eq. 8–11 choosing
// targets and actor positions.
func ExampleSolveAdversary() {
	an := &cpsguard.ImpactAnalysis{
		Graph:     twoChainSystem(),
		Ownership: cpsguard.Ownership{"lineA": "A", "lineB": "B"},
	}
	m, err := an.ComputeMatrix(nil)
	if err != nil {
		panic(err)
	}
	plan, err := cpsguard.SolveAdversary(cpsguard.AdversaryConfig{
		Matrix:  m,
		Targets: cpsguard.UniformTargets([]string{"lineA", "lineB"}, 1, 1),
		Budget:  1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("targets:", plan.Targets)
	fmt.Println("captured actors:", plan.Actors)
	fmt.Printf("anticipated profit: %.0f\n", plan.Anticipated)
	// Output:
	// targets: [lineA]
	// captured actors: [B]
	// anticipated profit: 559
}

// ExamplePlayRound runs one full attack/defense round with perfect
// knowledge on both sides.
func ExamplePlayRound() {
	scn := cpsguard.NewScenario(twoChainSystem(), 2, 7)
	res, err := cpsguard.PlayRound(scn, cpsguard.GameConfig{
		AttackBudget:          1,
		DefenseBudgetPerActor: 2,
		PaSamples:             4,
		Seed:                  1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("defense never helps the adversary: %v\n",
		res.RealizedDefended <= res.RealizedUndefended)
	fmt.Printf("effectiveness is non-negative: %v\n", res.Effectiveness >= 0)
	// Output:
	// defense never helps the adversary: true
	// effectiveness is non-negative: true
}

// ExampleGraph_AssetIDs shows that edges are the attackable assets.
func ExampleGraph_AssetIDs() {
	ids := twoChainSystem().AssetIDs()
	sort.Strings(ids)
	fmt.Println(ids)
	// Output:
	// [lineA lineB]
}

// ExampleRandomOwnership shows the paper's 1/N ownership model.
func ExampleRandomOwnership() {
	g := twoChainSystem()
	o := cpsguard.RandomOwnership(g, 2, 42)
	fmt.Println("assets assigned:", len(o))
	for _, id := range g.AssetIDs() {
		if o[id] == "" {
			fmt.Println("unassigned asset!")
		}
	}
	// Output:
	// assets assigned: 2
}
