// N-k screening benchmark report: `make bench-screen` runs TestBenchScreen
// with BENCH_SCREEN_OUT set, which times a depth-2 vulnerability screen of a
// 64-region national-tier instance and writes BENCH_screen.json (same
// cpsguard-bench/v1 envelope as BENCH_telemetry.json) pairing ns/op with the
// screen.* counters — so the dominance rule's candidate reduction is tracked
// as a number, not an anecdote. The report fails unless the screen pruned at
// least as many contingency sets as it evaluated (a ≥2x reduction of the
// candidate space).
package cpsguard

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"

	"cpsguard/internal/actors"
	"cpsguard/internal/atomicio"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
)

// screenBenchTargets caps the corridor-target set: 32 targets give a
// 528-pair N-2 space — large enough for the dominance rule to matter,
// small enough that one screen stays in benchmark territory (the full
// 464-corridor space at depth 2 is ~10^5 sets, minutes of solves even
// with pruning).
const screenBenchTargets = 32

// screenBenchInstance builds the shared 64-region national-tier instance
// and its corridor-target slice (transmission and pipeline edges — the
// contingencies N-k studies range over).
func screenBenchInstance(tb testing.TB) (*impact.Analysis, []string) {
	tb.Helper()
	g, err := gridgen.Build(gridgen.Config{
		Regions: 64, Seed: 3, Tier: gridgen.TierNational, Stress: true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	var corridor []string
	for _, id := range g.AssetIDs() {
		if strings.HasPrefix(id, "tx:") || strings.HasPrefix(id, "pipe:") {
			corridor = append(corridor, id)
		}
	}
	if len(corridor) < screenBenchTargets {
		tb.Fatalf("national instance has %d corridor targets, want ≥ %d", len(corridor), screenBenchTargets)
	}
	an := &impact.Analysis{
		Graph:     g,
		Ownership: actors.RandomOwnership(g, 4, rng.Derive(3, 0x5C12)),
		Cache:     solvecache.New(16384),
		WarmStart: true,
		LPMethod:  lp.MethodRevised,
	}
	return an, corridor[:screenBenchTargets]
}

// BenchmarkScreenNational times one depth-2 vulnerability screen of the
// 64-region national instance over its capped corridor-target set — the
// production screening stack end to end: solve cache, warm starts, revised
// simplex, dominance pruning.
func BenchmarkScreenNational(b *testing.B) {
	an, targets := screenBenchInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := screen.Run(screen.Config{Analysis: an, Targets: targets, K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchScreen is gated by BENCH_SCREEN_OUT: unset, it skips; set, it
// runs the national screening benchmark, writes the JSON report to that
// path, and fails unless the dominance rule pruned at least as many
// contingency sets as were evaluated — the screen must at least halve the
// candidate space on the national instance, or it is not earning its keep.
func TestBenchScreen(t *testing.T) {
	out := os.Getenv("BENCH_SCREEN_OUT")
	if out == "" {
		t.Skip("set BENCH_SCREEN_OUT=path to run the screening benchmark")
	}
	reg := telemetry.Default()
	reg.Reset()
	r := testing.Benchmark(BenchmarkScreenNational)
	snap := reg.Snapshot(telemetry.SnapshotOptions{})
	counters := make(map[string]int64, len(snap.Counters))
	for name, v := range snap.Counters {
		if v != 0 {
			counters[name] = v
		}
	}
	reg.Reset()

	report := benchTelemetryReport{
		Schema:     benchSchema,
		GoVersion:  runtime.Version(),
		Platform:   runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: map[string]benchTelemetryEntry{
			"ScreenNational": {
				Iterations:  r.N,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Counters:    counters,
			},
		},
	}
	t.Logf("ScreenNational: %d iter, %d ns/op, %d counters", r.N, r.NsPerOp(), len(counters))

	for _, c := range []string{"screen.runs", "screen.evaluated", "screen.pruned"} {
		if counters[c] == 0 {
			t.Errorf("ScreenNational recorded no %s counter", c)
		}
	}
	evaluated, pruned := counters["screen.evaluated"], counters["screen.pruned"]
	if pruned < evaluated {
		t.Errorf("dominance rule pruned %d of %d+%d contingency sets — less than half the candidate space",
			pruned, evaluated, pruned)
	} else if evaluated > 0 {
		t.Logf("candidate reduction: %.1fx (%d evaluated of %d total sets)",
			float64(evaluated+pruned)/float64(evaluated), evaluated, evaluated+pruned)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := atomicio.MkdirAllAndWrite(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", out, len(data))
}
