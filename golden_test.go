package cpsguard

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/experiments"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/shard"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures from current output")

// goldenCfg is a small but fully representative seeded configuration: the
// six-state model, two actor counts, two defender noise levels, two
// ownership draws each, exercising dispatch → impact → SA → Pa estimation →
// defense → settlement end to end.
func goldenCfg() experiments.Config {
	return experiments.Config{
		Trials:    2,
		Seed:      7,
		ActorGrid: []int{2, 4},
		SigmaGrid: []float64{0, 0.2},
		PaSamples: 4,
		NoiseMode: core.MatrixNoise,
	}
}

// TestGoldenFig5CSV locks the full pipeline's numeric output byte-for-byte
// against a committed fixture. Any change to dispatch, impact accounting,
// simplex pivoting, adversary search, Pa sampling, or defense knapsacks that
// shifts a single digit fails here. Regenerate deliberately with
//
//	go test -run TestGoldenFig5CSV -update .
func TestGoldenFig5CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	// Telemetry must be a pure observer: run with the most invasive
	// settings (tracing on) and require the product bytes unchanged.
	telemetry.Default().EnableTracing(true)
	defer telemetry.Default().EnableTracing(false)

	tb, err := experiments.Fig5(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(tb.CSV())

	path := filepath.Join("testdata", "golden_fig5.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("golden CSV drifted from %s\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestGoldenFig5WithObservability re-runs the golden configuration with the
// whole observability stack live — structured event logger on a debug sink,
// run manifest, span tracing at full run capacity — and requires the product
// CSV to stay byte-identical to the committed fixture. The stack is a pure
// observer: if wiring it in shifts a single digit, this fails.
func TestGoldenFig5WithObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	dir := t.TempDir()
	run := cli.StartRun(cli.RunOptions{Tool: "golden", Seed: 7, Dir: dir, StderrLevel: obs.LevelError})

	cfg := goldenCfg()
	cfg.Log = run.Log
	tb, err := experiments.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Close(); err != nil {
		t.Fatalf("run artifacts: %v", err)
	}
	telemetry.Default().EnableTracing(false)

	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig5.csv"))
	if err != nil {
		t.Fatalf("missing fixture (run TestGoldenFig5CSV with -update to create): %v", err)
	}
	if got := tb.CSV(); got != string(want) {
		t.Fatalf("observability stack perturbed the golden CSV\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	for _, artifact := range []string{"events.jsonl", "metrics.json", "trace.json", "manifest.json"} {
		if _, err := os.Stat(filepath.Join(dir, artifact)); err != nil {
			t.Errorf("run artifact %s not written: %v", artifact, err)
		}
	}
}

// TestGoldenFig5CachedWarm re-runs the golden configuration with the solve
// cache and baseline-basis warm starting enabled — the accelerated
// configuration cpsexp exposes as -solve-cache/-warm-start — and requires
// the CSV to stay byte-identical to the committed fixture. This is the
// enforcement of DESIGN.md §12's determinism statement: the cache is a pure
// memo and warm starting only changes how the baseline basis is reached,
// never which profits are reported.
func TestGoldenFig5CachedWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	cfg := goldenCfg()
	cfg.Cache = solvecache.New(4096)
	cfg.WarmStart = true
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig5.csv"))
	if err != nil {
		t.Fatalf("missing fixture (run TestGoldenFig5CSV with -update to create): %v", err)
	}
	// Two passes over one shared cache, as `cpsexp -fig all` shares one
	// across figures: the first fills it (warm-started misses), the second
	// replays the same scenarios from it. Both must render the fixture's
	// exact bytes.
	for pass := 1; pass <= 2; pass++ {
		tb, err := experiments.Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := tb.CSV(); got != string(want) {
			t.Fatalf("pass %d: solve cache / warm start perturbed the golden CSV\n--- want ---\n%s\n--- got ---\n%s",
				pass, want, got)
		}
	}
	st := cfg.Cache.Stats()
	if st.Misses == 0 {
		t.Error("golden run never reached the solve cache: the accelerated path was not exercised")
	}
	if st.Hits == 0 {
		t.Errorf("second pass never hit the solve cache (misses %d): scenario salts are not stable", st.Misses)
	}
}

// TestGoldenFig5Revised re-runs the golden configuration with the sparse
// revised simplex selected for every dispatch (cpsexp -lp-method=revised)
// and requires the CSV to stay byte-identical to the committed fixture —
// the full-pipeline enforcement of the revised method's determinism
// contract (DESIGN.md §15): instances at or below the dense crossover are
// delegated wholesale to the dense bounded solver, so switching methods may
// not move a single digit. A second phase re-runs with the solve cache and warm
// starting on (two passes over one shared cache, as cpsexp -solve-cache
// -warm-start -lp-method=revised would), which must also render the
// fixture's exact bytes — method-salted cache keys keep the revised
// entries from aliasing dense ones.
func TestGoldenFig5Revised(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig5.csv"))
	if err != nil {
		t.Fatalf("missing fixture (run TestGoldenFig5CSV with -update to create): %v", err)
	}

	cfg := goldenCfg()
	cfg.LPMethod = lp.MethodRevised
	tb, err := experiments.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.CSV(); got != string(want) {
		t.Fatalf("revised-method golden CSV drifted from fixture\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	cfg = goldenCfg()
	cfg.LPMethod = lp.MethodRevised
	cfg.Cache = solvecache.New(4096)
	cfg.WarmStart = true
	for pass := 1; pass <= 2; pass++ {
		tb, err := experiments.Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := tb.CSV(); got != string(want) {
			t.Fatalf("pass %d: revised + cache/warm perturbed the golden CSV\n--- want ---\n%s\n--- got ---\n%s",
				pass, want, got)
		}
	}
	st := cfg.Cache.Stats()
	if st.Misses == 0 {
		t.Error("revised golden run never reached the solve cache")
	}
	if st.Hits == 0 {
		t.Errorf("second revised pass never hit the solve cache (misses %d): method salting broke key stability", st.Misses)
	}
}

// TestGoldenFig5Screened re-runs the golden configuration with N-k
// vulnerability screening threaded into every adversary solve (cpsexp
// -screen-k 2) and requires the CSV to stay byte-identical to the committed
// fixture in all three execution strategies: cold, accelerated (solve cache +
// warm start, two passes over one shared cache), and as a 2-way sharded sweep
// merged and strict-replayed. This is the full-pipeline enforcement of the
// screen's exact-mode contract (DESIGN.md §17): the ranking may only filter
// certified-zero targets and never changes a reported digit.
func TestGoldenFig5Screened(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig5.csv"))
	if err != nil {
		t.Fatalf("missing fixture (run TestGoldenFig5CSV with -update to create): %v", err)
	}
	screenedCfg := func() experiments.Config {
		cfg := goldenCfg()
		cfg.ScreenK = 2
		return cfg
	}

	before := telemetry.Default().Snapshot(telemetry.SnapshotOptions{}).Counters["screen.runs"]
	tb, err := experiments.Fig5(screenedCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.CSV(); got != string(want) {
		t.Fatalf("screened golden CSV drifted from fixture\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	after := telemetry.Default().Snapshot(telemetry.SnapshotOptions{}).Counters["screen.runs"]
	if after <= before {
		t.Fatal("screened golden run never invoked the screen: ScreenK is not threaded through Fig5")
	}

	cfg := screenedCfg()
	cfg.Cache = solvecache.New(4096)
	cfg.WarmStart = true
	for pass := 1; pass <= 2; pass++ {
		tb, err := experiments.Fig5(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := tb.CSV(); got != string(want) {
			t.Fatalf("pass %d: screen + cache/warm perturbed the golden CSV\n--- want ---\n%s\n--- got ---\n%s",
				pass, want, got)
		}
	}
	if st := cfg.Cache.Stats(); st.Hits == 0 {
		t.Errorf("second screened pass never hit the solve cache (misses %d)", st.Misses)
	}

	parent := t.TempDir()
	for i := 0; i < 2; i++ {
		a := shard.Assignment{Index: i, Count: 2}
		dir := filepath.Join(parent, a.DirName())
		j, err := checkpoint.Create(filepath.Join(dir, shard.JournalName), checkpoint.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := screenedCfg()
		sweep := &checkpoint.Sweep{Journal: j}
		cfg.Sweep = sweep
		cfg.Shard = &a
		if _, err := experiments.Fig5(cfg); err != nil {
			t.Fatal(err)
		}
		m := shard.NewManifest(a, cfg.Seed, "golden-screened")
		m.JournalRecords = int(j.Seq())
		m.Executed = sweep.Executed()
		m.Completed = true
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		m.StampJournal(dir)
		if err := m.Write(dir); err != nil {
			t.Fatal(err)
		}
	}
	dirs, err := shard.DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: "golden-screened"})
	if err != nil {
		t.Fatal(err)
	}
	mcfg := screenedCfg()
	sweep := &checkpoint.Sweep{Replay: res.Replay, RequireReplay: true}
	mcfg.Sweep = sweep
	tb, err = experiments.Fig5(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Executed() != 0 {
		t.Fatalf("merged screened run executed %d trials; strict replay must execute none", sweep.Executed())
	}
	if got := tb.CSV(); got != string(want) {
		t.Fatalf("sharded screened golden CSV drifted from fixture\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestGoldenRunIsDeterministic re-runs the same configuration and requires
// identical bytes — the in-process version of the two-run determinism
// contract the telemetry layer documents.
func TestGoldenRunIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline determinism test")
	}
	a, err := experiments.Fig5(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.Fig5(goldenCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Fatalf("two identical seeded runs diverged:\n--- first ---\n%s\n--- second ---\n%s", a.CSV(), b.CSV())
	}
}

// TestGoldenFig5Sharded runs the golden configuration as a 2-way sharded
// sweep — each shard journaling only its owned trials into its own
// directory — then merges the journals and re-renders Fig5 in strict replay
// mode. The result must be byte-identical to the committed fixture: sharding
// is a pure execution strategy, never a numeric one.
func TestGoldenFig5Sharded(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline golden test")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fig5.csv"))
	if err != nil {
		t.Fatalf("missing fixture (run TestGoldenFig5CSV with -update to create): %v", err)
	}

	parent := t.TempDir()
	for i := 0; i < 2; i++ {
		a := shard.Assignment{Index: i, Count: 2}
		dir := filepath.Join(parent, a.DirName())
		j, err := checkpoint.Create(filepath.Join(dir, shard.JournalName), checkpoint.Options{NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := goldenCfg()
		sweep := &checkpoint.Sweep{Journal: j}
		cfg.Sweep = sweep
		cfg.Shard = &a
		if _, err := experiments.Fig5(cfg); err != nil {
			t.Fatal(err)
		}
		m := shard.NewManifest(a, cfg.Seed, "golden")
		m.JournalRecords = int(j.Seq())
		m.Executed = sweep.Executed()
		m.Completed = true
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		m.StampJournal(dir)
		if err := m.Write(dir); err != nil {
			t.Fatal(err)
		}
	}

	dirs, err := shard.DiscoverShards(parent)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := goldenCfg()
	sweep := &checkpoint.Sweep{Replay: res.Replay, RequireReplay: true}
	cfg.Sweep = sweep
	tb, err := experiments.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Executed() != 0 {
		t.Fatalf("merged golden run executed %d trials; strict replay must execute none", sweep.Executed())
	}
	if got := tb.CSV(); got != string(want) {
		t.Fatalf("sharded golden CSV drifted from fixture\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
