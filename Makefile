GO ?= go

.PHONY: ci vet build test race fuzz-smoke clean

ci: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke: exercise each fuzz target briefly so regressions in the
# hostile-input paths surface in CI without a long fuzzing budget.
fuzz-smoke:
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzSolveAgreement -fuzztime=5s
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzHostileInputs -fuzztime=5s
	$(GO) test ./internal/graph/ -run=^$$ -fuzz=FuzzUnmarshalValidate -fuzztime=5s

clean:
	$(GO) clean ./...
