GO ?= go

.PHONY: ci vet build test race bench bench-warm bench-revised bench-shard bench-servd bench-obs bench-screen bench-smoke fuzz-smoke revised-smoke crash-resume shard-smoke servd-smoke obs-smoke screen-smoke clean

ci: vet build race bench-smoke fuzz-smoke revised-smoke crash-resume shard-smoke servd-smoke obs-smoke screen-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race detector over the whole module with a short trial budget: the golden
# full-pipeline runs are skipped (they are single-threaded determinism
# checks), while every concurrent path — parallel fan-out, the shared solve
# cache, journaling — still runs under the detector.
race:
	$(GO) test -race -short ./...

# Solver-layer benchmark sweep with telemetry attribution: pairs ns/op with
# the deterministic work counters (pivots, nodes, evaluations, appends) each
# workload produced. Output is machine-readable for regression tracking.
bench:
	BENCH_OUT=BENCH_telemetry.json $(GO) test -run '^TestBenchTelemetry$$' -count=1 -v .

# Warm-start and cache speedup report: runs the cold/warm benchmark pairs and
# writes BENCH_warmstart.json pairing ns/op with warm vs cold pivot counts.
bench-warm:
	BENCH_WARM_OUT=BENCH_warmstart.json $(GO) test -run '^TestBenchWarmstart$$' -count=1 -v .

# Shard-merge throughput report: times the full merge path (discovery,
# CRC/partition validation, replay union) over an 8-way fleet and writes
# BENCH_shard.json pairing ns/op with the merge validation counters.
# Revised-simplex speedup report: benchmarks the sparse revised simplex
# against the dense oracle on the dispatch and national-scale instances and
# writes BENCH_revised.json pairing ns/op with the lp.revised.* pivot and
# factorization counters.
bench-revised:
	BENCH_REVISED_OUT=BENCH_revised.json $(GO) test -run '^TestBenchRevised$$' -count=1 -v .

bench-shard:
	BENCH_SHARD_OUT=BENCH_shard.json $(GO) test -run '^TestBenchShard$$' -count=1 -v .

# Service cache-hit throughput report: times the full HTTP round trip of a
# deduped POST /scenarios (store lookup + artifact digest re-verification)
# and writes BENCH_servd.json pairing ns/op with the service counters.
bench-servd:
	BENCH_SERVD_OUT=BENCH_servd.json $(GO) test -run '^TestBenchServd$$' -count=1 -v .

# Observability-layer report: times the Prometheus exposition render (the
# per-scrape cost) and the fleet trace merge, writing BENCH_obs.json in the
# cpsguard-bench/v1 envelope.
bench-obs:
	BENCH_OBS_OUT=BENCH_obs.json $(GO) test -run '^TestBenchObs$$' -count=1 -v .

# N-k screening speedup report: benchmarks the depth-2 vulnerability screen
# of a 64-region national instance and writes BENCH_screen.json pairing
# ns/op with the screen.* counters; fails unless the dominance rule pruned
# at least as many contingency sets as it evaluated (≥2x reduction).
bench-screen:
	BENCH_SCREEN_OUT=BENCH_screen.json $(GO) test -run '^TestBenchScreen$$' -count=1 -v .

# One-iteration pass over every benchmark: catches benchmarks that no longer
# compile or panic, without paying for a timed run. Part of ci.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 ./...

# Short fuzz smoke: exercise each fuzz target briefly so regressions in the
# hostile-input paths surface in CI without a long fuzzing budget.
fuzz-smoke:
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzSolveAgreement -fuzztime=5s
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzHostileInputs -fuzztime=5s
	$(GO) test ./internal/graph/ -run=^$$ -fuzz=FuzzUnmarshalValidate -fuzztime=5s
	$(GO) test ./internal/checkpoint/ -run=^$$ -fuzz=FuzzReadJournal -fuzztime=5s
	$(GO) test ./internal/milp/ -run=^$$ -fuzz=FuzzBranchAndBound -fuzztime=5s
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzWarmStart -fuzztime=5s
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzRevisedSimplex -fuzztime=5s
	$(GO) test ./internal/screen/ -run=^$$ -fuzz=FuzzScreenPrune -fuzztime=5s

# Revised-vs-dense differential smoke: the dense-oracle battery (fixtures,
# outage sweeps, seeded random LPs, error taxonomy) plus the golden Fig. 5
# byte-identity check under -lp-method=revised. Part of ci.
revised-smoke:
	$(GO) test ./internal/lp/ -run 'TestRevisedVsDenseDifferential|TestRevisedWarmAcrossMethods' -count=1
	$(GO) test -run '^TestGoldenFig5Revised$$' -count=1 .

# Crash-resume acceptance: a sweep killed mid-run and resumed from its
# journal — including over a deliberately torn journal tail — must render
# CSV byte-identical to an uninterrupted run.
crash-resume:
	$(GO) test ./internal/checkpoint/ -count=1
	$(GO) test ./internal/experiments/ -run 'TestResume|TestRetries' -count=1
	$(GO) test ./internal/repeated/ -run 'TestResume' -count=1

# Sharded-sweep acceptance: the shard/supervisor/merge unit and integration
# tests, then an end-to-end binary check — a supervised 2-shard run, merged,
# must produce a CSV with the same checksum as a single-process run of the
# same seeded sweep.
shard-smoke:
	$(GO) test ./internal/shard/ -count=1
	$(GO) test ./internal/experiments/ -run 'TestShard|TestStrictReplay' -count=1
	$(GO) build -o /tmp/cpsguard-shard-smoke/cpsexp ./cmd/cpsexp
	rm -rf /tmp/cpsguard-shard-smoke/run
	/tmp/cpsguard-shard-smoke/cpsexp -quick -fig 5 -seed 7 -log-level warn \
		-csv /tmp/cpsguard-shard-smoke/run/single >/dev/null
	/tmp/cpsguard-shard-smoke/cpsexp -quick -fig 5 -seed 7 -log-level warn \
		-shard-supervise 2 -shard-dir /tmp/cpsguard-shard-smoke/run/shards >/dev/null
	/tmp/cpsguard-shard-smoke/cpsexp -quick -fig 5 -seed 7 -log-level warn \
		-shard-merge /tmp/cpsguard-shard-smoke/run/shards \
		-csv /tmp/cpsguard-shard-smoke/run/merged >/dev/null
	cmp /tmp/cpsguard-shard-smoke/run/single/fig5.csv /tmp/cpsguard-shard-smoke/run/merged/fig5.csv
	@echo "shard-smoke: merged CSV byte-identical to single-process run"

# Scenario-service acceptance: the servd unit/integration battery (dedup,
# coalescing, saturation, breaker, corruption eviction, drain, chaos through
# the HTTP path), then an end-to-end binary check — start cpsservd, submit
# the same scenario twice, require the second response to be a cache hit
# serving bytes identical to the first, and a clean drain on SIGTERM.
servd-smoke:
	$(GO) test ./internal/servd/ -count=1
	$(GO) test -run '^TestServdSmoke$$' -count=1 .

# Fleet observability acceptance: metric-name lint and strict-exposition
# round-trip over the live default registry, the trace-context/merge and
# Prometheus unit batteries, then an end-to-end binary check — a 2-shard
# supervised run whose per-process traces cpsreport stitches into one fleet
# timeline with every cross-process parent link resolved.
obs-smoke:
	$(GO) test ./internal/telemetry/ -count=1
	$(GO) test -run 'TestMetricNames|TestDefaultRegistryExposition|TestObsSmoke' -count=1 .

# N-k screening acceptance: the screen unit battery and the differential
# oracle (screened == brute force, bit-identical), then an end-to-end binary
# check — a screened `cpsexp -screen-k 2` run must produce a CSV
# byte-identical to the unscreened run of the same seeded sweep while its
# metrics snapshot shows the dominance rule actually pruned candidates.
screen-smoke:
	$(GO) test ./internal/screen/ -count=1
	$(GO) test ./internal/defense/ -run 'TestPlanRedesign' -count=1
	$(GO) build -o /tmp/cpsguard-screen-smoke/cpsexp ./cmd/cpsexp
	rm -rf /tmp/cpsguard-screen-smoke/run
	/tmp/cpsguard-screen-smoke/cpsexp -quick -fig 5 -seed 7 -log-level warn \
		-csv /tmp/cpsguard-screen-smoke/run/plain >/dev/null
	/tmp/cpsguard-screen-smoke/cpsexp -quick -fig 5 -seed 7 -log-level warn -screen-k 2 \
		-csv /tmp/cpsguard-screen-smoke/run/screened \
		-metrics /tmp/cpsguard-screen-smoke/run/metrics.json >/dev/null
	cmp /tmp/cpsguard-screen-smoke/run/plain/fig5.csv /tmp/cpsguard-screen-smoke/run/screened/fig5.csv
	grep -q '"screen.pruned": [1-9]' /tmp/cpsguard-screen-smoke/run/metrics.json
	@echo "screen-smoke: screened CSV byte-identical to unscreened run, pruning active"

# Remove build and scratch artifacts. The reference CSVs committed under
# results/ are deliberately preserved: they are reviewed outputs, not
# build products.
clean:
	$(GO) clean ./...
	rm -f cpsattack cpsdefend cpsexp cpsflow cpsgen cpsservd BENCH_telemetry.json BENCH_warmstart.json BENCH_revised.json BENCH_shard.json BENCH_servd.json BENCH_obs.json BENCH_screen.json
	rm -rf /tmp/cpsguard-shard-smoke /tmp/cpsguard-screen-smoke
	find . -name '*.journal' -not -path './results/*' -delete
	find . -name '*.test' -delete
