GO ?= go

.PHONY: ci vet build test race fuzz-smoke crash-resume clean

ci: vet build race fuzz-smoke crash-resume

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke: exercise each fuzz target briefly so regressions in the
# hostile-input paths surface in CI without a long fuzzing budget.
fuzz-smoke:
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzSolveAgreement -fuzztime=5s
	$(GO) test ./internal/lp/ -run=^$$ -fuzz=FuzzHostileInputs -fuzztime=5s
	$(GO) test ./internal/graph/ -run=^$$ -fuzz=FuzzUnmarshalValidate -fuzztime=5s

# Crash-resume acceptance: a sweep killed mid-run and resumed from its
# journal — including over a deliberately torn journal tail — must render
# CSV byte-identical to an uninterrupted run.
crash-resume:
	$(GO) test ./internal/checkpoint/ -count=1
	$(GO) test ./internal/experiments/ -run 'TestResume|TestRetries' -count=1
	$(GO) test ./internal/repeated/ -run 'TestResume' -count=1

# Remove build and scratch artifacts. The reference CSVs committed under
# results/ are deliberately preserved: they are reviewed outputs, not
# build products.
clean:
	$(GO) clean ./...
	rm -f cpsattack cpsdefend cpsexp cpsflow cpsgen
	find . -name '*.journal' -not -path './results/*' -delete
	find . -name '*.test' -delete
