// End-to-end smoke of the fleet observability pipeline: build cpsexp and
// cpsreport, run a 2-shard supervised quick sweep with an observability
// directory, stitch the supervisor's and shards' trace.json files with
// cpsreport -trace-merge, and require a merged timeline with spans from all
// three processes and every cross-process parent link resolved. Also proves
// the live /metrics/prom endpoint round-trips the strict in-repo exposition
// parser byte-stably. `make obs-smoke` runs this; it is part of the
// ordinary suite too (skipped in -short).
package cpsguard

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"cpsguard/internal/telemetry"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestObsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the cpsexp/cpsreport binaries; skipped in -short")
	}
	dir := t.TempDir()
	cpsexp := buildTool(t, dir, "cpsexp")
	cpsreport := buildTool(t, dir, "cpsreport")

	// One root for everything the fleet writes, so a single -trace-merge
	// walk finds the supervisor's trace next to the shards'.
	fleetDir := filepath.Join(dir, "fleet")
	run := exec.Command(cpsexp,
		"-fig", "5", "-quick", "-seed", "7", "-log-level", "warn",
		"-shard-supervise", "2",
		"-shard-dir", filepath.Join(fleetDir, "shards"),
		"-obs", filepath.Join(fleetDir, "obs"))
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("supervised sweep failed: %v\n%s", err, out)
	}

	// Every process left its own trace: the supervisor's obs bundle plus
	// one per shard directory.
	for _, p := range []string{
		filepath.Join(fleetDir, "obs", "trace.json"),
		filepath.Join(fleetDir, "shards", "shard-000-of-002", "trace.json"),
		filepath.Join(fleetDir, "shards", "shard-001-of-002", "trace.json"),
	} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("missing per-process trace: %v", err)
		}
	}

	merge := exec.Command(cpsreport, "-trace-merge", fleetDir)
	out, err := merge.CombinedOutput()
	if err != nil {
		t.Fatalf("cpsreport -trace-merge: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "merged 3 trace file(s)") {
		t.Fatalf("merge summary: %s", out)
	}
	if strings.Contains(string(out), "distinct trace IDs") {
		t.Fatalf("fleet run produced mixed trace IDs: %s", out)
	}

	data, err := os.ReadFile(filepath.Join(fleetDir, "trace-fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := telemetry.ReadChromeTrace(data)
	if err != nil {
		t.Fatalf("merged fleet trace unreadable: %v", err)
	}
	stats, err := telemetry.ValidateTraceLinks(merged)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PIDs) < 3 {
		t.Fatalf("fleet trace spans %d process(es) %v, want >= 3 (supervisor + 2 shards)",
			len(stats.PIDs), stats.PIDs)
	}
	if stats.CrossProcessLinks < 2 {
		t.Fatalf("cross-process links = %d, want >= 2 (each shard links to its launch span)",
			stats.CrossProcessLinks)
	}
	if stats.UnresolvedParents != 0 {
		t.Fatalf("%d span(s) reference parents missing from the merged trace",
			stats.UnresolvedParents)
	}
}

func TestObsSmokePromEndpoint(t *testing.T) {
	// The live debug mux every binary mounts must serve an exposition that
	// our own strict parser accepts, byte-identically across scrapes of a
	// settled registry — the contract CI diffing and scrape tooling rely on.
	srv := httptest.NewServer(telemetry.Default().DebugMux())
	defer srv.Close()
	scrape := func() []byte {
		resp, err := http.Get(srv.URL + "/metrics/prom")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape: %d", resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	first := scrape()
	if _, _, err := telemetry.ParsePrometheus(first); err != nil {
		t.Fatalf("live exposition failed the strict parser: %v", err)
	}
	if !bytes.Equal(first, scrape()) {
		t.Fatal("two scrapes of a settled registry differ")
	}
}
