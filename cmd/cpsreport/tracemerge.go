// Fleet trace stitching: -trace-merge DIR walks a sharded run directory
// (the supervisor's -obs dir and/or -shard-dir), collects every trace.json
// it finds — the supervisor's own plus one per shard — and merges them into
// a single Chrome trace_event timeline on a shared clock, with each process
// on its own track and cross-process parent links resolved by global span
// ID. The merged file opens in Perfetto / chrome://tracing as one fleet
// view.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/telemetry"
)

// discoverTraces returns the sorted trace.json paths under root (at any
// depth, so both DIR/trace.json and DIR/shard-000-of-002/trace.json are
// found).
func discoverTraces(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && d.Name() == "trace.json" {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// mergeTraces stitches every trace.json under root into outPath (default
// root/trace-fleet.json) and returns a one-paragraph summary for stdout.
func mergeTraces(root, outPath string) (string, error) {
	paths, err := discoverTraces(root)
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("no trace.json under %s (run with -obs and tracing enabled)", root)
	}
	var traces []*telemetry.ChromeTrace
	var sources []string
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return "", err
		}
		tr, err := telemetry.ReadChromeTrace(data)
		if err != nil {
			return "", fmt.Errorf("%s: %w", p, err)
		}
		traces = append(traces, tr)
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			rel = p
		}
		sources = append(sources, rel)
	}
	merged, stats, err := telemetry.MergeChromeTraces(traces)
	if err != nil {
		return "", err
	}
	if outPath == "" {
		outPath = filepath.Join(root, "trace-fleet.json")
	}
	data, err := merged.MarshalIndented()
	if err != nil {
		return "", err
	}
	if err := atomicio.MkdirAllAndWrite(outPath, data, 0o644); err != nil {
		return "", err
	}
	summary := fmt.Sprintf(
		"merged %d trace file(s) (%s) into %s:\n"+
			"  %d span(s) across %d process(es), %d parent link(s) (%d cross-process), %d unresolved\n",
		stats.Files, strings.Join(sources, ", "), outPath,
		stats.Spans, len(stats.PIDs), stats.Links, stats.CrossProcessLinks,
		stats.UnresolvedParents)
	if stats.PIDRemaps > 0 {
		summary += fmt.Sprintf("  %d colliding pid(s) remapped\n", stats.PIDRemaps)
	}
	if len(stats.TraceIDs) != 1 {
		summary += fmt.Sprintf("  warning: %d distinct trace IDs — these files are not one fleet run\n",
			len(stats.TraceIDs))
	}
	return summary, nil
}
