// Command cpsreport turns a run's observability directory (written by
// cpsexp/cpsgen -obs) into a human-readable markdown report: run identity
// and flags from manifest.json, per-stage and per-trial timing from the
// metrics.json span window, fallback-chain usage from the counters,
// warn/error highlights from events.jsonl, and — when the run used a
// checkpoint journal — per-trial outcomes joined by trial ID.
//
// Usage:
//
//	cpsreport -run DIR [-o report.md] [-journal FILE]
//	cpsreport -run DIR -diff DIR2
//	cpsreport -trace-merge DIR [-o trace-fleet.json]
//
// -diff compares two run directories instead: manifest differences (seed,
// flags, config and artifact digests) plus deltas over the deterministic
// telemetry counters, so two runs of the same seeded sweep can be checked
// for behavioral drift artifact-by-artifact.
//
// -trace-merge stitches every per-process trace.json under DIR (the
// supervisor's plus one per shard) into a single fleet timeline; see
// tracemerge.go.
//
// Only manifest.json is required; every other artifact degrades to a
// "missing" note so a crashed run still yields a report.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/checkpoint"
	"cpsguard/internal/cli"
	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
	"cpsguard/internal/screen"
	"cpsguard/internal/telemetry"
)

func main() {
	runDir := flag.String("run", "", "run directory to report on (holds manifest.json etc.)")
	diffDir := flag.String("diff", "", "second run directory: compare instead of report")
	journalPath := flag.String("journal", "", "checkpoint journal to join trials against (default: auto-detect from the manifest)")
	out := flag.String("o", "", "write the report to this file (default stdout)")
	traceMerge := flag.String("trace-merge", "", "merge every trace.json under this directory into one fleet timeline")
	flag.Parse()

	if *traceMerge != "" {
		summary, err := mergeTraces(*traceMerge, *out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpsreport: -trace-merge: %v\n", err)
			os.Exit(1)
		}
		cli.MustWrite(os.Stdout, "stdout", []byte(summary))
		return
	}
	if *runDir == "" {
		fmt.Fprintln(os.Stderr, "cpsreport: -run DIR is required")
		flag.Usage()
		os.Exit(2)
	}
	a, err := loadRun(*runDir, *journalPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsreport: -run: %v\n", err)
		os.Exit(1)
	}
	var report string
	if *diffDir != "" {
		b, err := loadRun(*diffDir, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpsreport: -diff: %v\n", err)
			os.Exit(1)
		}
		report = renderDiff(a, b)
	} else {
		report = renderReport(a)
	}
	if *out == "" {
		cli.MustWrite(os.Stdout, "stdout", []byte(report))
		return
	}
	if err := atomicio.MkdirAllAndWrite(*out, []byte(report), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "cpsreport: %v\n", err)
		os.Exit(1)
	}
}

// loadRun reads a run directory. The manifest is mandatory (it is the run's
// identity); metrics, trace, events, and journal degrade to Missing notes. A
// missing or unreadable manifest names the directory at fault, so a -diff
// between two directories always says which side is broken.
func loadRun(dir, journalPath string) (*runData, error) {
	if fi, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("run directory %s: %w", dir, err)
	} else if !fi.IsDir() {
		return nil, fmt.Errorf("run directory %s is not a directory", dir)
	}
	m, err := manifest.Load(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%s has no manifest.json — not a run directory (runs are written with -obs DIR)", dir)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: unreadable manifest: %w", dir, err)
	}
	d := &runData{Dir: dir, Manifest: m}
	miss := func(format string, args ...any) {
		d.Missing = append(d.Missing, fmt.Sprintf(format, args...))
	}

	if data, err := os.ReadFile(filepath.Join(dir, "metrics.json")); err != nil {
		miss("metrics.json: %v", err)
	} else if snap, err := telemetry.ReadSnapshot(data); err != nil {
		miss("metrics.json: %v", err)
	} else {
		d.Snapshot = snap
	}

	// screen.json only exists for -screen-k runs, so its absence is normal —
	// no Missing note; a present-but-corrupt file still degrades loudly.
	if data, err := os.ReadFile(filepath.Join(dir, "screen.json")); err == nil {
		var r screen.Ranking
		if err := json.Unmarshal(data, &r); err != nil {
			miss("screen.json: %v", err)
		} else {
			d.Screen = &r
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		miss("screen.json: %v", err)
	}

	if data, err := os.ReadFile(filepath.Join(dir, "trace.json")); err != nil {
		miss("trace.json: %v", err)
	} else if tr, err := telemetry.ReadChromeTrace(data); err != nil {
		miss("trace.json: %v", err)
	} else {
		d.Trace = tr
	}

	events, torn, err := loadEvents(filepath.Join(dir, "events.jsonl"))
	d.Events = events // whatever parsed is worth rendering, even after an error
	if err != nil {
		miss("events.jsonl: %v (%d event(s) recovered before the error)", err, len(events))
	}
	if torn > 0 {
		miss("events.jsonl: %d torn line(s) skipped (crashed mid-write?); %d event(s) recovered", torn, len(events))
	}

	if journalPath == "" {
		journalPath = detectJournal(m)
	}
	if journalPath != "" {
		if rep, err := loadJournal(journalPath, dir); err != nil {
			miss("journal %s: %v", journalPath, err)
		} else {
			d.Journal = rep
		}
	}
	return d, nil
}

// loadEvents parses an events.jsonl stream. A crash can tear the file
// mid-record — the torn line(s) are skipped and counted so the report can
// say so, and everything that did parse is returned even when the scanner
// itself fails partway (oversized line, read error): a truncated stream
// degrades the report, it must never abort it.
func loadEvents(path string) (events []obs.DecodedEvent, torn int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev, err := obs.DecodeJSONL(line)
		if err != nil {
			torn++
			continue
		}
		events = append(events, ev)
	}
	return events, torn, sc.Err()
}

// detectJournal finds a journal among the manifest's outputs: cpsexp
// registers the -journal file there, and it is the only non-CSV/JSON
// output a sweep produces.
func detectJournal(m *manifest.Manifest) string {
	for _, out := range m.Outputs {
		base := strings.ToLower(filepath.Base(out.Path))
		if strings.Contains(base, "journal") || strings.HasSuffix(base, ".jnl") {
			return out.Path
		}
	}
	return ""
}

// loadJournal opens a checkpoint journal, trying the recorded path first
// and falling back to the run directory (the run may have been archived
// together with its artifacts).
func loadJournal(path, dir string) (*checkpoint.Replay, error) {
	rep, err := checkpoint.Load(path)
	if err == nil {
		return rep, nil
	}
	if alt := filepath.Join(dir, filepath.Base(path)); alt != path {
		if rep2, err2 := checkpoint.Load(alt); err2 == nil {
			return rep2, nil
		}
	}
	return nil, err
}
