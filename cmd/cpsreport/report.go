// Report rendering: pure functions from loaded run data to markdown. Kept
// free of I/O so tests can feed synthetic runs and assert on the output.
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
	"cpsguard/internal/screen"
	"cpsguard/internal/telemetry"
)

// maxTrialRows bounds the per-trial table; the slowest trials are the
// interesting ones, so rows are duration-sorted and the rest summarized.
const maxTrialRows = 50

// maxEventRows bounds the warn/error event listing.
const maxEventRows = 20

// maxScreenRows bounds the vulnerability-ranking tables.
const maxScreenRows = 10

// runData is everything cpsreport could load for one run directory. Only
// Manifest is mandatory; every other artifact degrades to a "missing" note
// so a crashed or minimal run still yields a report.
type runData struct {
	Dir      string
	Manifest *manifest.Manifest
	Snapshot *telemetry.Snapshot
	Trace    *telemetry.ChromeTrace
	Events   []obs.DecodedEvent
	Journal  *checkpoint.Replay
	// Screen is the N-k vulnerability ranking a -screen-k run leaves behind
	// as screen.json; nil for unscreened runs.
	Screen *screen.Ranking
	// Missing lists artifacts that could not be loaded, with reasons.
	Missing []string
}

// stageAgg is the per-stage rollup over the retained span window.
type stageAgg struct {
	stage    string
	count    int
	wallNS   int64
	work     int64
	retries  int
	degraded int
}

func aggregateStages(spans []telemetry.SpanRecord) []stageAgg {
	byStage := map[string]*stageAgg{}
	for _, sp := range spans {
		a := byStage[sp.Stage]
		if a == nil {
			a = &stageAgg{stage: sp.Stage}
			byStage[sp.Stage] = a
		}
		a.count++
		a.wallNS += sp.DurationNS
		a.work += sp.Work
		a.retries += sp.Retries
		a.degraded += len(sp.Degradations)
	}
	out := make([]stageAgg, 0, len(byStage))
	for _, a := range byStage {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].wallNS != out[j].wallNS {
			return out[i].wallNS > out[j].wallNS
		}
		return out[i].stage < out[j].stage
	})
	return out
}

// trialRow joins one experiments.trial span with its journal record.
type trialRow struct {
	id       string
	wallNS   int64
	retries  int
	watchdog bool
	status   string // "ok", "failed", "replayed", or "—" (no journal)
	errMsg   string
}

func trialRows(d *runData) []trialRow {
	var rows []trialRow
	if d.Snapshot == nil {
		return nil
	}
	replayed := map[string]bool{}
	for _, ev := range d.Events {
		if ev.Msg == "trial replayed from journal" && ev.Trial != "" {
			replayed[ev.Trial] = true
		}
	}
	for _, sp := range d.Snapshot.Spans {
		if sp.Stage != "experiments.trial" {
			continue
		}
		r := trialRow{id: sp.Problem, wallNS: sp.DurationNS, retries: sp.Retries, status: "—"}
		for _, dg := range sp.Degradations {
			if strings.HasPrefix(dg, "watchdog") {
				r.watchdog = true
			}
		}
		if rec, ok := d.Journal.Lookup(sp.Problem); ok {
			if rec.OK {
				r.status = "ok"
			} else {
				r.status = "failed"
				r.errMsg = rec.Error
			}
		}
		if replayed[r.id] {
			r.status = "replayed"
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].wallNS != rows[j].wallNS {
			return rows[i].wallNS > rows[j].wallNS
		}
		return rows[i].id < rows[j].id
	})
	return rows
}

// renderReport turns one run's data into a markdown report.
func renderReport(d *runData) string {
	var b strings.Builder
	m := d.Manifest
	fmt.Fprintf(&b, "# Run report: %s\n\n", m.RunID)

	fmt.Fprintf(&b, "| | |\n|---|---|\n")
	fmt.Fprintf(&b, "| tool | `%s` |\n", m.Tool)
	fmt.Fprintf(&b, "| started | %s |\n", m.Started.Format(time.RFC3339))
	if !m.Finished.IsZero() {
		fmt.Fprintf(&b, "| finished | %s |\n", m.Finished.Format(time.RFC3339))
		fmt.Fprintf(&b, "| wall clock | %s |\n", fmtDur(m.Finished.Sub(m.Started).Nanoseconds()))
	}
	fmt.Fprintf(&b, "| seed | %d |\n", m.Seed)
	fmt.Fprintf(&b, "| go | %s (%s) |\n", m.GoVersion, m.Platform)
	if m.ConfigSHA256 != "" {
		fmt.Fprintf(&b, "| config | `%s` |\n", short(m.ConfigSHA256))
	}
	if m.TelemetrySHA256 != "" {
		fmt.Fprintf(&b, "| telemetry | `%s` |\n", short(m.TelemetrySHA256))
	}
	b.WriteString("\n")
	for _, n := range m.Notes {
		fmt.Fprintf(&b, "> note: %s\n", cell(n))
	}
	for _, miss := range d.Missing {
		fmt.Fprintf(&b, "> missing: %s\n", cell(miss))
	}
	if len(m.Notes) > 0 || len(d.Missing) > 0 {
		b.WriteString("\n")
	}

	renderFlags(&b, m.Flags)
	renderArtifacts(&b, m)
	renderScreen(&b, d)
	renderStages(&b, d)
	renderTrials(&b, d)
	renderFallbacks(&b, d)
	renderEvents(&b, d)
	renderTraceInfo(&b, d)
	return b.String()
}

func renderFlags(b *strings.Builder, flags map[string]string) {
	if len(flags) == 0 {
		return
	}
	b.WriteString("## Flags\n\n| flag | value |\n|---|---|\n")
	names := make([]string, 0, len(flags))
	for n := range flags {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "| `-%s` | `%s` |\n", n, cell(flags[n]))
	}
	b.WriteString("\n")
}

func renderArtifacts(b *strings.Builder, m *manifest.Manifest) {
	if len(m.Inputs) == 0 && len(m.Outputs) == 0 {
		return
	}
	b.WriteString("## Artifacts\n\n| kind | path | bytes | sha256 |\n|---|---|---:|---|\n")
	row := func(kind string, d manifest.FileDigest) {
		if d.Error != "" {
			fmt.Fprintf(b, "| %s | `%s` | | error: %s |\n", kind, cell(d.Path), cell(d.Error))
			return
		}
		fmt.Fprintf(b, "| %s | `%s` | %d | `%s` |\n", kind, cell(d.Path), d.Bytes, short(d.SHA256))
	}
	for _, d := range m.Inputs {
		row("input", d)
	}
	for _, d := range m.Outputs {
		row("output", d)
	}
	b.WriteString("\n")
}

// renderScreen renders the N-k vulnerability ranking: the worst contingency
// sets by welfare impact, the worst single targets, and how much of the
// contingency space the dominance rule certified away (see DESIGN.md §17).
func renderScreen(b *strings.Builder, d *runData) {
	r := d.Screen
	if r == nil {
		return
	}
	fmt.Fprintf(b, "## Vulnerability screen (N-%d)\n\n", r.K)
	mode := "monotone (dominance pruning active)"
	if !r.Monotone {
		mode = "non-monotone (reorder-only; nothing pruned)"
	}
	fmt.Fprintf(b, "Baseline welfare %.2f; %s; %d contingency sets evaluated, %d pruned as dominated.\n\n",
		r.BaselineWelfare, mode, r.Evaluated, r.Pruned)
	if r.Truncated {
		b.WriteString("> ranking truncated: the contingency space exceeded the screen budget\n\n")
	}

	if len(r.Top) > 0 {
		certified := 0
		for _, ts := range r.Targets {
			if ts.CertifiedZero {
				certified++
			}
		}
		b.WriteString("| rank | contingency | welfare impact | inherited |\n|---:|---|---:|:---:|\n")
		for i, c := range r.Top {
			if i >= maxScreenRows {
				fmt.Fprintf(b, "\n(%d more contingency sets omitted)\n", len(r.Top)-maxScreenRows)
				break
			}
			inh := ""
			if c.Inherited {
				inh = "✓"
			}
			fmt.Fprintf(b, "| %d | `%s` | %.2f | %s |\n",
				i+1, cell(strings.Join(c.Targets, " + ")), c.Delta, inh)
		}
		fmt.Fprintf(b, "\n%d of %d single targets certified harmless (zero welfare impact at every depth).\n\n",
			certified, len(r.Targets))
	}
}

func renderStages(b *strings.Builder, d *runData) {
	if d.Snapshot == nil {
		return
	}
	aggs := aggregateStages(d.Snapshot.Spans)
	if len(aggs) == 0 {
		return
	}
	b.WriteString("## Stage breakdown\n\n")
	if d.Snapshot.SpansDropped > 0 {
		fmt.Fprintf(b, "> span ring overflowed: %d oldest spans dropped; totals below cover the retained window only\n\n",
			d.Snapshot.SpansDropped)
	}
	b.WriteString("| stage | spans | wall | work | retries | degradations |\n|---|---:|---:|---:|---:|---:|\n")
	for _, a := range aggs {
		fmt.Fprintf(b, "| `%s` | %d | %s | %d | %d | %d |\n",
			a.stage, a.count, fmtDur(a.wallNS), a.work, a.retries, a.degraded)
	}
	b.WriteString("\n")
}

func renderTrials(b *strings.Builder, d *runData) {
	rows := trialRows(d)
	execd, replayed := counter(d, "checkpoint.trials_executed"), counter(d, "checkpoint.trials_replayed")
	if len(rows) == 0 && execd == 0 && replayed == 0 {
		return
	}
	b.WriteString("## Trials\n\n")
	if execd > 0 || replayed > 0 {
		fmt.Fprintf(b, "%d executed, %d replayed from journal, %d retries, %d watchdog flags.\n\n",
			execd, replayed, counter(d, "checkpoint.retries"), counter(d, "checkpoint.watchdog_flags"))
	}
	if len(rows) == 0 {
		return
	}
	shown := rows
	if len(shown) > maxTrialRows {
		shown = shown[:maxTrialRows]
	}
	b.WriteString("| trial | wall | retries | watchdog | journal | error |\n|---|---:|---:|:---:|---|---|\n")
	for _, r := range shown {
		wd := ""
		if r.watchdog {
			wd = "⚑"
		}
		fmt.Fprintf(b, "| `%s` | %s | %d | %s | %s | %s |\n",
			cell(r.id), fmtDur(r.wallNS), r.retries, wd, r.status, cell(r.errMsg))
	}
	if len(rows) > maxTrialRows {
		fmt.Fprintf(b, "\n(%d more trials omitted; slowest %d shown)\n", len(rows)-maxTrialRows, maxTrialRows)
	}
	b.WriteString("\n")
}

func renderFallbacks(b *strings.Builder, d *runData) {
	if d.Snapshot == nil {
		return
	}
	// Any counter recording a resilience path: fallback chains, Bland
	// restarts, unproven (budget-capped) exits.
	var names []string
	for n := range d.Snapshot.Counters {
		if strings.Contains(n, "fallback") || strings.Contains(n, "unproven") ||
			strings.Contains(n, "bland") || strings.Contains(n, "watchdog") {
			if d.Snapshot.Counters[n] != 0 {
				names = append(names, n)
			}
		}
	}
	depth, hasDepth := d.Snapshot.Histograms["adversary.fallback_depth"]
	degr := map[string]int{}
	for _, sp := range d.Snapshot.Spans {
		for _, dg := range sp.Degradations {
			kind, _, _ := strings.Cut(dg, ":")
			degr[kind]++
		}
	}
	if len(names) == 0 && len(degr) == 0 && (!hasDepth || depth.Count == 0) {
		return
	}
	b.WriteString("## Fallbacks and degradations\n\n")
	if len(names) > 0 {
		sort.Strings(names)
		b.WriteString("| counter | value |\n|---|---:|\n")
		for _, n := range names {
			fmt.Fprintf(b, "| `%s` | %d |\n", n, d.Snapshot.Counters[n])
		}
		b.WriteString("\n")
	}
	if hasDepth && depth.Count > 0 {
		fmt.Fprintf(b, "Fallback chain depth over %d resilient solves (depth 0 = primary solver succeeded): %s\n\n",
			depth.Count, histLine(depth))
	}
	if len(degr) > 0 {
		kinds := make([]string, 0, len(degr))
		for k := range degr {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		b.WriteString("Degradations recorded on spans: ")
		for i, k := range kinds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "`%s`×%d", k, degr[k])
		}
		b.WriteString("\n\n")
	}
}

func renderEvents(b *strings.Builder, d *runData) {
	if len(d.Events) == 0 {
		return
	}
	byLevel := map[string]int{}
	var notable []obs.DecodedEvent
	for _, ev := range d.Events {
		byLevel[ev.Level]++
		if ev.Level == "warn" || ev.Level == "error" {
			notable = append(notable, ev)
		}
	}
	b.WriteString("## Events\n\n")
	fmt.Fprintf(b, "%d events: %d debug, %d info, %d warn, %d error.\n\n",
		len(d.Events), byLevel["debug"], byLevel["info"], byLevel["warn"], byLevel["error"])
	if len(notable) == 0 {
		return
	}
	shown := notable
	if len(shown) > maxEventRows {
		shown = shown[:maxEventRows]
	}
	b.WriteString("| level | stage | trial | message |\n|---|---|---|---|\n")
	for _, ev := range shown {
		fmt.Fprintf(b, "| %s | %s | `%s` | %s |\n",
			ev.Level, cell(ev.Stage), cell(ev.Trial), cell(ev.Msg))
	}
	if len(notable) > maxEventRows {
		fmt.Fprintf(b, "\n(%d more warn/error events omitted)\n", len(notable)-maxEventRows)
	}
	b.WriteString("\n")
}

func renderTraceInfo(b *strings.Builder, d *runData) {
	if d.Trace == nil {
		return
	}
	spans, tracks := 0, 0
	for _, ev := range d.Trace.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "M":
			tracks++
		}
	}
	b.WriteString("## Trace\n\n")
	fmt.Fprintf(b, "`trace.json` holds %d spans across %d tracks — open it in chrome://tracing or https://ui.perfetto.dev.\n",
		spans, tracks)
}

// renderDiff compares two runs: manifest-level differences plus counter
// deltas (the deterministic sections, so a diff on identical seeds and
// configs isolates behavioral drift).
func renderDiff(a, d *runData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run comparison\n\n| | A | B |\n|---|---|---|\n")
	fmt.Fprintf(&b, "| run | `%s` | `%s` |\n", a.Manifest.RunID, d.Manifest.RunID)
	fmt.Fprintf(&b, "| dir | `%s` | `%s` |\n\n", cell(a.Dir), cell(d.Dir))

	diffs := manifest.Diff(a.Manifest, d.Manifest)
	if len(diffs) == 0 {
		b.WriteString("Manifests are equivalent (same tool, seed, config, inputs, outputs).\n\n")
	} else {
		b.WriteString("## Manifest differences\n\n| field | A | B |\n|---|---|---|\n")
		for _, e := range diffs {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", cell(e.Field), cell(e.A), cell(e.B))
		}
		b.WriteString("\n")
	}

	renderCounterDiff(&b, a, d)
	return b.String()
}

func renderCounterDiff(b *strings.Builder, a, d *runData) {
	if a.Snapshot == nil || d.Snapshot == nil {
		b.WriteString("(counter comparison skipped: metrics.json missing on one side)\n")
		return
	}
	names := map[string]bool{}
	for n := range a.Snapshot.Counters {
		names[n] = true
	}
	for n := range d.Snapshot.Counters {
		names[n] = true
	}
	var changed []string
	for n := range names {
		if a.Snapshot.Counters[n] != d.Snapshot.Counters[n] {
			changed = append(changed, n)
		}
	}
	if len(changed) == 0 {
		b.WriteString("All counters identical — the runs did the same logical work.\n")
		return
	}
	sort.Strings(changed)
	b.WriteString("## Counter deltas\n\n| counter | A | B | Δ |\n|---|---:|---:|---:|\n")
	for _, n := range changed {
		av, bv := a.Snapshot.Counters[n], d.Snapshot.Counters[n]
		fmt.Fprintf(b, "| `%s` | %d | %d | %+d |\n", n, av, bv, bv-av)
	}
}

// counter reads one counter from the snapshot, 0 when absent.
func counter(d *runData, name string) int64 {
	if d.Snapshot == nil {
		return 0
	}
	return d.Snapshot.Counters[name]
}

// histLine renders a histogram as "≤edge:count" pairs plus overflow.
func histLine(h telemetry.HistogramSnapshot) string {
	var parts []string
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if i < len(h.Edges) {
			parts = append(parts, fmt.Sprintf("≤%d:%d", h.Edges[i], n))
		} else {
			parts = append(parts, fmt.Sprintf(">%d:%d", h.Edges[len(h.Edges)-1], n))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, "  ")
}

// fmtDur renders nanoseconds with sensible rounding for a report.
func fmtDur(ns int64) string {
	dur := time.Duration(ns)
	switch {
	case dur >= time.Second:
		return dur.Round(time.Millisecond).String()
	case dur >= time.Millisecond:
		return dur.Round(time.Microsecond).String()
	default:
		return dur.String()
	}
}

// short abbreviates a hex digest for table cells.
func short(hexDigest string) string {
	if len(hexDigest) > 12 {
		return hexDigest[:12]
	}
	return hexDigest
}

// cell sanitizes a string for a markdown table cell.
func cell(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
