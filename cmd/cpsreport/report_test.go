package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
	"cpsguard/internal/screen"
	"cpsguard/internal/telemetry"
)

func syntheticRun(t *testing.T) *runData {
	t.Helper()
	m := manifest.New("cpsexp", 7)
	m.RunID = "cpsexp-20260101T000000-s7"
	m.Started = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m.Finished = m.Started.Add(3 * time.Second)
	m.Flags = map[string]string{"fig": "5", "seed": "7"}
	m.Outputs = []manifest.FileDigest{{Path: "fig5.csv", SHA256: strings.Repeat("ab", 32), Bytes: 78}}
	return &runData{
		Dir:      "/tmp/x",
		Manifest: m,
		Snapshot: &telemetry.Snapshot{
			Counters: map[string]int64{
				"checkpoint.trials_executed": 2,
				"checkpoint.retries":         1,
				"adversary.fallbacks":        1,
				"lp.solves":                  10,
			},
			Histograms: map[string]telemetry.HistogramSnapshot{
				"adversary.fallback_depth": {Edges: []int64{0, 1, 2}, Buckets: []int64{3, 1, 0, 0}, Count: 4, Sum: 1},
			},
			Spans: []telemetry.SpanRecord{
				{ID: 1, Stage: "experiments.point", Problem: "fig5", DurationNS: 3e9},
				{ID: 2, ParentID: 1, Stage: "experiments.trial", Problem: "s7|fig5|t0", DurationNS: 2e9, Retries: 1},
				{ID: 3, ParentID: 1, Stage: "experiments.trial", Problem: "s7|fig5|t1", DurationNS: 1e9,
					Degradations: []string{"watchdog: deadline exceeded, requeued"}},
				{ID: 4, ParentID: 2, Stage: "lp.solve", Work: 120, DurationNS: 5e8},
			},
		},
		Events: []obs.DecodedEvent{
			{Level: "info", Msg: "wrote csv"},
			{Level: "warn", Stage: "fig5", Trial: "s7|fig5|t1", Msg: "retrying after transient failure"},
		},
	}
}

func TestRenderReportSections(t *testing.T) {
	out := renderReport(syntheticRun(t))
	for _, want := range []string{
		"# Run report: cpsexp-20260101T000000-s7",
		"## Flags",
		"| `-fig` | `5` |",
		"## Artifacts",
		"`fig5.csv`",
		"## Stage breakdown",
		"`experiments.trial` | 2 | 3s",
		"## Trials",
		"2 executed, 0 replayed from journal, 1 retries",
		"s7\\|fig5\\|t0",
		"⚑", // watchdog flag on t1
		"## Fallbacks and degradations",
		"`adversary.fallbacks` | 1",
		"≤0:3",
		"`watchdog`×1",
		"## Events",
		"retrying after transient failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}

// TestRenderReportScreenSection: a run with a screen.json ranking gets the
// vulnerability table — worst contingencies ranked, inherited certificates
// marked, certified-zero targets counted — and an unscreened run gets none.
func TestRenderReportScreenSection(t *testing.T) {
	d := syntheticRun(t)
	if out := renderReport(d); strings.Contains(out, "Vulnerability screen") {
		t.Fatalf("unscreened run must not render a screen section:\n%s", out)
	}
	d.Screen = &screen.Ranking{
		K: 2, BaselineWelfare: 1234.5, Monotone: true,
		Worst: screen.Contingency{Targets: []string{"tx:a", "tx:b"}, Delta: -200},
		Top: []screen.Contingency{
			{Targets: []string{"tx:a", "tx:b"}, Delta: -200},
			{Targets: []string{"tx:a", "pipe:c"}, Delta: -150, Inherited: true},
		},
		Targets: []screen.TargetScore{
			{ID: "tx:a", Delta: -180},
			{ID: "pipe:c", Delta: 0, CertifiedZero: true},
		},
		Evaluated: 40, Pruned: 60,
	}
	out := renderReport(d)
	for _, want := range []string{
		"## Vulnerability screen (N-2)",
		"monotone (dominance pruning active)",
		"40 contingency sets evaluated, 60 pruned as dominated",
		"| 1 | `tx:a + tx:b` | -200.00 |",
		"| 2 | `tx:a + pipe:c` | -150.00 | ✓ |",
		"1 of 2 single targets certified harmless",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("screen section missing %q\n---\n%s", want, out)
		}
	}
}

// TestLoadRunReadsScreenArtifact: loadRun picks up screen.json when present
// and degrades with a Missing note (not an error) when it is corrupt.
func TestLoadRunReadsScreenArtifact(t *testing.T) {
	dir := t.TempDir()
	m := manifest.New("cpsexp", 7)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	good := `{"k":1,"baseline_welfare":10,"monotone":true,"worst":{"targets":["tx:a"],"welfare_delta":-5},"top":[],"targets":[],"evaluated":3,"pruned":1}`
	if err := os.WriteFile(filepath.Join(dir, "screen.json"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadRun(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Screen == nil || d.Screen.K != 1 || d.Screen.Pruned != 1 {
		t.Fatalf("screen.json not loaded: %+v", d.Screen)
	}

	if err := os.WriteFile(filepath.Join(dir, "screen.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = loadRun(dir, "")
	if err != nil {
		t.Fatalf("corrupt screen.json must degrade, not abort: %v", err)
	}
	if d.Screen != nil {
		t.Fatal("corrupt screen.json parsed into a ranking")
	}
	found := false
	for _, miss := range d.Missing {
		if strings.Contains(miss, "screen.json") {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrupt screen.json not surfaced in Missing: %v", d.Missing)
	}
}

func TestRenderReportTrialsSortedByDuration(t *testing.T) {
	out := renderReport(syntheticRun(t))
	slow := strings.Index(out, "s7\\|fig5\\|t0")
	fast := strings.Index(out, "s7\\|fig5\\|t1")
	if slow < 0 || fast < 0 || slow > fast {
		t.Fatalf("trial rows not duration-sorted (t0 at %d, t1 at %d)", slow, fast)
	}
}

func TestRenderDiff(t *testing.T) {
	a, b := syntheticRun(t), syntheticRun(t)
	b.Manifest.Seed = 8
	b.Manifest.Flags["seed"] = "8"
	b.Snapshot.Counters["lp.solves"] = 14
	out := renderDiff(a, b)
	for _, want := range []string{
		"# Run comparison",
		"## Manifest differences",
		"| seed | 7 | 8 |",
		"## Counter deltas",
		"| `lp.solves` | 10 | 14 | +4 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q\n---\n%s", want, out)
		}
	}
}

func TestRenderDiffIdenticalRuns(t *testing.T) {
	out := renderDiff(syntheticRun(t), syntheticRun(t))
	if !strings.Contains(out, "Manifests are equivalent") {
		t.Errorf("identical manifests not reported as equivalent:\n%s", out)
	}
	if !strings.Contains(out, "All counters identical") {
		t.Errorf("identical counters not reported as identical:\n%s", out)
	}
}

func TestLoadRunDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	m := manifest.New("cpsgen", 1)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	d, err := loadRun(dir, "")
	if err != nil {
		t.Fatalf("loadRun with manifest only: %v", err)
	}
	if len(d.Missing) == 0 {
		t.Error("expected missing-artifact notes for metrics/trace/events")
	}
	out := renderReport(d)
	if !strings.Contains(out, "> missing:") {
		t.Errorf("report does not surface missing artifacts:\n%s", out)
	}
}

func TestLoadRunRequiresManifest(t *testing.T) {
	if _, err := loadRun(t.TempDir(), ""); err == nil {
		t.Fatal("loadRun without manifest.json should fail")
	}
}

func TestLoadEventsSkipsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	data := `{"level":"info","msg":"ok"}` + "\n" + `{"level":"warn","ms` // torn mid-write
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	events, torn, err := loadEvents(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Msg != "ok" {
		t.Fatalf("want 1 parsed event, got %+v", events)
	}
	if torn != 1 {
		t.Fatalf("torn = %d, want 1", torn)
	}
}

func TestLoadRunReportsTornEventsAndKeepsRendering(t *testing.T) {
	dir := t.TempDir()
	m := manifest.New("cpsexp", 7)
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	// A stream truncated mid-record: two good events, then a torn line.
	data := `{"level":"info","msg":"trial started"}` + "\n" +
		`{"level":"info","msg":"wrote csv"}` + "\n" +
		`{"level":"warn","msg":"half a reco`
	if err := os.WriteFile(filepath.Join(dir, "events.jsonl"), []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadRun(dir, "")
	if err != nil {
		t.Fatalf("loadRun on a torn stream must not abort: %v", err)
	}
	if len(d.Events) != 2 {
		t.Fatalf("recovered events = %d, want 2", len(d.Events))
	}
	var note string
	for _, miss := range d.Missing {
		if strings.Contains(miss, "torn") {
			note = miss
		}
	}
	if !strings.Contains(note, "1 torn line(s)") || !strings.Contains(note, "2 event(s) recovered") {
		t.Fatalf("torn-line note missing or wrong: %q (all: %v)", note, d.Missing)
	}
	out := renderReport(d)
	if !strings.Contains(out, "torn") || !strings.Contains(out, "2 events") {
		t.Errorf("report must surface the torn note and still render events:\n%s", out)
	}
}

func TestLoadEventsKeepsPartialOnScannerError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	// One good record, then a line exceeding the scanner's 4 MiB cap: the
	// scanner fails, but the parsed prefix must survive.
	data := `{"level":"info","msg":"ok"}` + "\n" + strings.Repeat("x", 5*1024*1024)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	events, _, err := loadEvents(path)
	if err == nil {
		t.Fatal("want a scanner error for the oversized line")
	}
	if len(events) != 1 || events[0].Msg != "ok" {
		t.Fatalf("partial events lost on scanner error: %+v", events)
	}
}

// TestLoadRunNamesTheBrokenDirectory: the satellite contract for -diff —
// whichever side lacks (or has a corrupt) manifest.json, the error must name
// that directory so the operator knows which run is at fault.
func TestLoadRunNamesTheBrokenDirectory(t *testing.T) {
	missing := t.TempDir()
	_, err := loadRun(missing, "")
	if err == nil || !strings.Contains(err.Error(), missing) ||
		!strings.Contains(err.Error(), "manifest.json") {
		t.Fatalf("missing-manifest err = %v, want one naming %s", err, missing)
	}

	corrupt := t.TempDir()
	if err := os.WriteFile(filepath.Join(corrupt, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = loadRun(corrupt, "")
	if err == nil || !strings.Contains(err.Error(), corrupt) ||
		!strings.Contains(err.Error(), "unreadable manifest") {
		t.Fatalf("corrupt-manifest err = %v, want unreadable-manifest error naming %s", err, corrupt)
	}

	_, err = loadRun(filepath.Join(missing, "never-created"), "")
	if err == nil || !strings.Contains(err.Error(), "run directory") {
		t.Fatalf("nonexistent-dir err = %v, want run-directory error", err)
	}
}
