package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cpsguard/internal/telemetry"
)

// writeTrace renders a registry's trace into dir/trace.json the way a run
// bundle would.
func writeTrace(t *testing.T, dir string, r *telemetry.Registry) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := r.Snapshot(telemetry.SnapshotOptions{Spans: true}).ChromeTrace().MarshalIndented()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestTraceMergeCommand(t *testing.T) {
	// A two-process fixture shaped like a real supervised run: the parent's
	// trace.json at the root, the child's inside a shard subdirectory,
	// linked by an inherited trace context.
	base := time.Unix(100, 0)
	tick := func(r *telemetry.Registry) {
		n := 0
		r.SetClock(func() time.Time {
			n++
			return base.Add(time.Duration(n) * time.Millisecond)
		})
	}
	parent := telemetry.NewRegistry()
	tick(parent)
	parent.EnableTracing(true)
	parent.SetLabel("cpsexp supervise")
	root := parent.StartSpan("shard.supervise", "1 shards")
	launch := parent.StartSpan("shard.child", "0/1 attempt 0")
	tc, ok := parent.ChildTraceContext(launch)
	if !ok {
		t.Fatal("no child trace context")
	}
	child := telemetry.NewRegistry()
	tick(child)
	child.SetTraceContext(tc)
	child.EnableTracing(true)
	child.SetLabel("cpsexp")
	sp := child.StartSpan("experiments.trial", "t0")
	sp.End()
	launch.End()
	root.End()

	dir := t.TempDir()
	writeTrace(t, dir, parent)
	writeTrace(t, filepath.Join(dir, "shard-000-of-001"), child)

	summary, err := mergeTraces(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "merged 2 trace file(s)") {
		t.Fatalf("summary: %s", summary)
	}
	if strings.Contains(summary, "distinct trace IDs") {
		t.Fatalf("one fleet run flagged as mixed traces: %s", summary)
	}

	data, err := os.ReadFile(filepath.Join(dir, "trace-fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := telemetry.ReadChromeTrace(data)
	if err != nil {
		t.Fatalf("merged trace unreadable: %v", err)
	}
	stats, err := telemetry.ValidateTraceLinks(merged)
	if err != nil {
		t.Fatal(err)
	}
	// Both fixtures ran in this test process, so the merge had to remap the
	// colliding PID into two distinct tracks.
	if len(stats.PIDs) != 2 {
		t.Fatalf("pids = %v, want 2 distinct", stats.PIDs)
	}
	if stats.CrossProcessLinks != 1 {
		t.Fatalf("cross-process links = %d, want 1 (child trial → launch span)",
			stats.CrossProcessLinks)
	}
	if stats.UnresolvedParents != 0 {
		t.Fatalf("unresolved parents = %d", stats.UnresolvedParents)
	}
}

func TestTraceMergeEmptyDir(t *testing.T) {
	if _, err := mergeTraces(t.TempDir(), ""); err == nil {
		t.Fatal("empty directory accepted")
	}
}
