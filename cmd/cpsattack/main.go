// Command cpsattack runs the strategic adversary (Section II-E) against an
// energy model: it computes the impact matrix under the adversary's
// (optionally noisy) view, solves the target/actor selection MILP, and
// reports the anticipated and ground-truth realized profits.
//
// Usage:
//
//	cpsattack [-model model.json] [-actors N] [-seed S] [-sigma σ]
//	          [-budget MA] [-catk c] [-ps p]
package main

import (
	"flag"
	"os"
	"strings"

	"cpsguard/internal/adversary"
	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
	"cpsguard/internal/rng"
	"cpsguard/internal/solvecache"
)

func main() {
	model := flag.String("model", "", "model JSON file (default: built-in stressed westgrid)")
	nActors := flag.Int("actors", 6, "number of random actors")
	seed := flag.Uint64("seed", 1, "random seed (ownership + noise)")
	sigma := flag.Float64("sigma", 0, "adversary knowledge noise σ")
	budget := flag.Float64("budget", 6, "attack budget MA")
	catk := flag.Float64("catk", 1, "uniform attack cost per target")
	ps := flag.Float64("ps", 1, "uniform attack success probability")
	mode := flag.String("mode", "graph", "noise mode: graph (faithful) or matrix (fast)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars and /debug/pprof on this address")
	solveCache := flag.Int("solve-cache", 0, "memoize dispatch solves in an N-entry LRU cache (0 = off); results are unchanged")
	warmStart := flag.Bool("warm-start", false, "warm-start perturbed dispatch solves from the baseline basis")
	screenK := flag.Int("screen-k", 0, "N-k vulnerability screening depth: prints the worst contingencies and accelerates the adversary search (0 = off; the plan is byte-identical either way)")
	lpMethod := flag.String("lp-method", "auto", "dispatch simplex implementation: auto, dense, rows, bounded, or revised")
	flag.Parse()

	logger := obs.New("cpsattack", obs.Sink{W: os.Stderr, Format: obs.Text, Min: obs.LevelInfo})
	fatal := func(err error) {
		logger.Error("fatal", obs.F("err", err))
		os.Exit(1)
	}

	method, err := lp.ParseMethod(*lpMethod)
	if err != nil {
		fatal(err)
	}

	stopDebug := cli.StartDebug(*debugAddr, logger)
	defer stopDebug()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	g, err := cli.LoadModel(*model, true)
	if err != nil {
		fatal(err)
	}
	s := core.NewScenario(g, *nActors, *seed)
	s.Parallel = parallel.Options{Context: ctx, Log: logger}
	s.Targets = adversary.UniformTargets(g.AssetIDs(), *catk, *ps)
	s.Cache = solvecache.New(*solveCache)
	s.WarmStart = *warmStart
	s.LPMethod = method
	s.ScreenK = *screenK
	defer func() {
		if st := s.Cache.Stats(); st.Capacity > 0 {
			logger.Info("solve cache",
				obs.F("hits", st.Hits), obs.F("misses", st.Misses),
				obs.F("evictions", st.Evictions), obs.F("size", st.Size))
		}
	}()

	nm, err := cli.ParseNoiseMode(*mode)
	if err != nil {
		fatal(err)
	}

	truth, err := s.Truth()
	if err != nil {
		cli.ExitCanceled(ctx, err, "interrupted while computing the ground-truth impact matrix")
		fatal(err)
	}
	rank, err := s.ScreenRanking()
	if err != nil {
		cli.ExitCanceled(ctx, err, "ground-truth matrix done; interrupted during the vulnerability screen")
		fatal(err)
	}
	view, err := s.View(*sigma, nm, rng.Derive(*seed, 1))
	if err != nil {
		cli.ExitCanceled(ctx, err, "ground-truth matrix done; interrupted while computing the adversary view")
		fatal(err)
	}
	plan, err := adversary.SolveResilient(adversary.Config{
		Matrix: view, Targets: s.Targets, Budget: *budget,
		Ctx: ctx, LPMethod: method, Screen: rank,
	})
	if err != nil {
		cli.ExitCanceled(ctx, err, "impact matrices done; interrupted during the target-selection search")
		fatal(err)
	}
	realized := adversary.Evaluate(plan, truth, s.Targets, adversary.EvaluateOptions{})

	cli.MustPrintf("system: %s\n", g)
	cli.MustPrintf("actors: %d (seed %d)   adversary noise σ=%.2f (%s mode)\n", *nActors, *seed, *sigma, nm)
	cli.MustPrintf("budget: %.1f at cost %.1f per target (max %d targets)\n\n", *budget, *catk, int(*budget / *catk))
	if rank != nil {
		certified := 0
		for _, ts := range rank.Targets {
			if ts.CertifiedZero {
				certified++
			}
		}
		cli.MustPrintf("vulnerability screen (N-%d): %d evaluated, %d pruned, %d/%d targets certified harmless\n",
			rank.K, rank.Evaluated, rank.Pruned, certified, len(rank.Targets))
		top := rank.Top
		if len(top) > 5 {
			top = top[:5]
		}
		for i, c := range top {
			cli.MustPrintf("  worst #%d  %-40s  welfare impact %10.2f\n",
				i+1, strings.Join(c.Targets, " + "), c.Delta)
		}
		cli.MustPrintln("")
	}
	cli.MustPrintf("chosen targets (%d):\n", len(plan.Targets))
	for _, t := range plan.Targets {
		dw := truth.WelfareDelta[t]
		cli.MustPrintf("  %-18s  system welfare impact %10.2f\n", t, dw)
	}
	cli.MustPrintf("\ncaptured actors (%d): %v\n", len(plan.Actors), plan.Actors)
	cli.MustPrintf("\nanticipated profit: %12.2f\n", plan.Anticipated)
	cli.MustPrintf("realized profit:    %12.2f   (ground truth)\n", realized)
	if plan.Anticipated > 0 {
		cli.MustPrintf("realization ratio:  %12.1f%%\n", 100*realized/plan.Anticipated)
	}
	if !plan.Proven {
		cli.MustPrintln("(search node limit hit; plan is best-found, not proven optimal)")
	}
	for _, fb := range plan.Fallbacks {
		cli.MustPrintf("(degraded: %s)\n", fb)
	}
}
