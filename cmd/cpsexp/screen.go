// The -screen-k artifact: one deterministic N-k vulnerability ranking of
// the run's grid, persisted as screen.json in the observability directory
// for cpsreport to render. The ranking is welfare-based and so independent
// of any particular trial's ownership draw; the fixed 4-actor draw below
// only shapes the profit decomposition riding along in the solve cache.
package main

import (
	"encoding/json"

	"cpsguard/internal/actors"
	"cpsguard/internal/graph"
	"cpsguard/internal/impact"
	"cpsguard/internal/lp"
	"cpsguard/internal/rng"
	"cpsguard/internal/screen"
	"cpsguard/internal/solvecache"
)

// screenTop is how many worst contingencies the artifact retains.
const screenTop = 16

func screenArtifact(g *graph.Graph, k int, seed uint64,
	cache *solvecache.Cache, method lp.Method) ([]byte, error) {
	an := &impact.Analysis{
		Graph:     g,
		Ownership: actors.RandomOwnership(g, 4, rng.Derive(seed, 0x5C12)),
		Cache:     cache,
		LPMethod:  method,
	}
	r, err := screen.Run(screen.Config{Analysis: an, K: k, Top: screenTop})
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
