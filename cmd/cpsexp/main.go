// Command cpsexp regenerates the paper's evaluation figures (Figures 2–7)
// on the built-in six-state model, printing each as an aligned table and
// optionally writing CSVs.
//
// Usage:
//
//	cpsexp [-fig 2|3|4|5|6|7|all] [-trials N] [-seed S]
//	       [-mode graph|matrix] [-csv DIR] [-quick]
//
// -quick shrinks grids and trial counts for a fast smoke run; the default
// configuration reproduces the shapes reported in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/experiments"
	"cpsguard/internal/parallel"
	"cpsguard/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsexp: ")
	fig := flag.String("fig", "all", "figure to regenerate: 2..7, all, ext, baseline, deception, or vectors")
	trials := flag.Int("trials", 5, "random ownership draws per point")
	seed := flag.Uint64("seed", 1, "random seed")
	mode := flag.String("mode", "graph", "noise mode: graph (faithful) or matrix (fast)")
	csvDir := flag.String("csv", "", "also write fig<N>.csv files into this directory")
	quick := flag.Bool("quick", false, "small grids for a fast smoke run")
	chart := flag.Bool("chart", false, "also render each figure as an ASCII chart")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	faultRate := flag.Float64("max-fault-rate", 0, "tolerated fraction of failed trials per point (0 = strict)")
	flag.Parse()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	faultLog := &experiments.FaultLog{}
	cfg := experiments.Config{
		Trials:   *trials,
		Seed:     *seed,
		Parallel: parallel.Options{Context: ctx},
		Faults:   experiments.FaultPolicy{MaxFailureRate: *faultRate, Log: faultLog},
	}
	if *mode == "matrix" {
		cfg.NoiseMode = core.MatrixNoise
	}
	if *quick {
		cfg.Trials = 2
		cfg.ActorGrid = []int{2, 6}
		cfg.SigmaGrid = []float64{0, 0.3}
		cfg.PaSamples = 6
		cfg.NoiseMode = core.MatrixNoise
	}

	runners := map[string]func(experiments.Config) (*stats.Table, error){
		"2": experiments.Fig2, "3": experiments.Fig3, "4": experiments.Fig4,
		"5": experiments.Fig5, "6": experiments.Fig6, "7": experiments.Fig7,
		"baseline":  experiments.BaselineComparison,
		"deception": experiments.Deception,
		"vectors":   experiments.AttackVectors,
		"security":  experiments.SecurityPremium,
		"hardening": experiments.HardeningComparison,
	}
	var order []string
	if *fig == "all" {
		order = []string{"2", "3", "4", "5", "6", "7"}
	} else if *fig == "ext" {
		order = []string{"baseline", "deception", "vectors", "security", "hardening"}
	} else if _, ok := runners[*fig]; ok {
		order = []string{*fig}
	} else {
		log.Fatalf("unknown figure %q (want 2..7, all, ext, baseline, deception, vectors)", *fig)
	}

	for fi, f := range order {
		start := time.Now()
		tb, err := runners[f](cfg)
		if err != nil {
			cli.ExitCanceled(ctx, err,
				fmt.Sprintf("%d/%d figures completed (interrupted in fig %s)", fi, len(order), f))
			log.Fatalf("fig %s: %v", f, err)
		}
		fmt.Printf("%s\n(%.1fs)\n\n", tb.Render(), time.Since(start).Seconds())
		if *chart {
			fmt.Println(tb.Chart(72, 18))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*csvDir, "fig"+f+".csv")
			if err := os.WriteFile(path, []byte(tb.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if n := len(faultLog.Failures()); n > 0 {
		fmt.Fprintf(os.Stderr, "tolerated %d/%d failed trials (rate %.3f):\n",
			n, faultLog.Trials(), faultLog.FailureRate())
		for _, f := range faultLog.Failures() {
			fmt.Fprintf(os.Stderr, "  %s\n", f.Error())
		}
	}
}
