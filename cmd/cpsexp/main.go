// Command cpsexp regenerates the paper's evaluation figures (Figures 2–7)
// on the built-in six-state model, printing each as an aligned table and
// optionally writing CSVs.
//
// Usage:
//
//	cpsexp [-fig 2|3|4|5|6|7|all] [-trials N] [-seed S]
//	       [-mode graph|matrix] [-csv DIR] [-quick]
//	       [-journal FILE] [-resume] [-retries N] [-trial-timeout D]
//	       [-obs DIR] [-log-level LEVEL]
//	       [-metrics FILE] [-trace] [-debug-addr ADDR]
//	cpsexp -shard i/n -shard-dir DIR [sweep flags]
//	cpsexp -shard-supervise n -shard-dir DIR [sweep flags]
//	cpsexp -shard-merge DIR [sweep flags] [-csv OUT]
//
// -quick shrinks grids and trial counts for a fast smoke run; the default
// configuration reproduces the shapes reported in EXPERIMENTS.md.
//
// With -journal, every trial outcome streams to an append-only crash-safe
// journal as it settles; a run killed mid-sweep can be restarted with
// -resume to replay the journaled trials and execute only the remainder,
// producing output byte-identical to an uninterrupted run. -retries turns
// on per-trial retry with capped backoff for transient solve errors, and
// -trial-timeout arms a watchdog that flags and once requeues trials that
// exceed the per-trial deadline.
//
// The shard modes scale the same sweep across processes. -shard i/n runs
// only the trials with index ≡ i (mod n), journaling them (with a shard
// manifest and telemetry snapshot) into -shard-dir/shard-III-of-NNN; it
// prints no tables — a shard's product is its journal. -shard-supervise n
// runs all n shards as child processes of this binary under a journal-growth
// watchdog, restarting crashed or stalled shards with capped backoff (each
// restart resumes from the shard's journal) and abandoning a shard after
// -shard-restarts failures. -shard-merge DIR validates the shard
// directories (CRC + sequence continuity, torn-tail repair, no overlapping
// or missing seed ranges, matching sweep configuration), then re-renders the
// figures with every trial replayed from the merged journals — byte-identical
// to a single-process run — and writes DIR/manifest.json recording every
// shard's digests and fault history. With -debug-addr, the process also
// serves POST /shards/ingest and GET /shards/rollup so a supervised fleet's
// counters can be watched in one place; shards POST there when given
// -shard-report.
//
// -obs makes the run fully observable: a debug-level structured event
// stream (events.jsonl) is written live into the directory, span tracing is
// enabled, and at exit the directory receives metrics.json (telemetry
// snapshot), trace.json (Chrome trace_event — open in chrome://tracing or
// Perfetto), and manifest.json (seed, flags, artifact SHA-256s). cpsreport
// turns the directory into a markdown report. -log-level sets the stderr
// verbosity (debug, info, warn, error).
//
// -metrics dumps the telemetry snapshot (solver counters and logical-work
// histograms — deterministic for a fixed seed and configuration) to a JSON
// file at sweep end; -trace additionally collects per-solve span traces and
// includes them plus the wall-clock timing histograms in the dump.
// -debug-addr serves live /metrics (JSON), /metrics/prom (Prometheus
// exposition), /debug/vars and /debug/pprof endpoints while the sweep runs.
//
// Exit codes: 0 success; 1 fatal error; 2 usage; 3 the sweep completed but
// at least one trial was abandoned after exhausting its retries (the
// failures are tolerated in the aggregates per -max-fault-rate, journaled,
// and reported as a structured error event — but the operator must know the
// data is degraded); 130 interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/checkpoint"
	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/experiments"
	"cpsguard/internal/faultinject"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
	"cpsguard/internal/shard"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/stats"
	"cpsguard/internal/telemetry"
)

// Exit codes (see package doc).
const (
	exitFatal           = 1
	exitUsage           = 2
	exitAbandonedTrials = 3
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2..7, all, ext, baseline, deception, or vectors")
	trials := flag.Int("trials", 5, "random ownership draws per point")
	seed := flag.Uint64("seed", 1, "random seed")
	mode := flag.String("mode", "graph", "noise mode: graph (faithful) or matrix (fast)")
	csvDir := flag.String("csv", "", "also write fig<N>.csv files into this directory")
	quick := flag.Bool("quick", false, "small grids for a fast smoke run")
	chart := flag.Bool("chart", false, "also render each figure as an ASCII chart")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	faultRate := flag.Float64("max-fault-rate", 0, "tolerated fraction of failed trials per point (0 = strict)")
	chaosRate := flag.Float64("chaos", 0, "fail this fraction of trials with an injected transient error (deterministic in -seed; fault-injection testing aid)")
	journal := flag.String("journal", "", "stream per-trial results to this crash-safe journal file")
	resume := flag.Bool("resume", false, "replay completed trials from the -journal file and run only the remainder")
	retries := flag.Int("retries", 0, "per-trial retries with capped backoff for transient solve errors")
	trialTimeout := flag.Duration("trial-timeout", 0, "per-trial watchdog deadline; flagged trials are requeued once (0 = off)")
	obsDir := flag.String("obs", "", "observability directory: live events.jsonl plus metrics/trace/manifest at exit (see cpsreport)")
	logLevel := flag.String("log-level", "info", "stderr log verbosity: debug, info, warn, or error")
	metricsPath := flag.String("metrics", "", "write a telemetry snapshot (JSON) to this file at sweep end")
	trace := flag.Bool("trace", false, "collect per-solve span traces and include them (plus wall-clock timings) in -metrics")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars, /debug/pprof and /shards/* on this address (e.g. localhost:6060)")
	gridPath := flag.String("grid", "", "grid model JSON file (default: built-in stressed westgrid)")
	screenK := flag.Int("screen-k", 0, "N-k vulnerability screening depth threaded into every adversary solve as a pruning front-end (0 = off; results are byte-identical either way, see DESIGN.md §17)")
	interventions := flag.Bool("interventions", false, "run the defense-as-redesign sweep (equivalent to -fig interventions)")
	solveCache := flag.Int("solve-cache", 0, "share an N-entry LRU dispatch-solve memo across all trials (0 = off); results are unchanged")
	warmStart := flag.Bool("warm-start", false, "warm-start perturbed dispatch solves from each scenario's baseline basis")
	lpMethod := flag.String("lp-method", "auto", "dispatch simplex implementation: auto, dense, rows, bounded, or revised")
	shardSpec := flag.String("shard", "", "run only shard i/n of the sweep (0-based, e.g. 0/4), journaling into -shard-dir")
	shardDir := flag.String("shard-dir", "shards", "parent directory for per-shard journals, manifests, and snapshots")
	shardSupervise := flag.Int("shard-supervise", 0, "run the sweep as n supervised child-process shards into -shard-dir")
	shardMergeDir := flag.String("shard-merge", "", "merge the shard directories under this parent and render the combined figures")
	shardReport := flag.String("shard-report", "", "POST this shard's counter snapshots to a supervisor debug address (host:port)")
	shardStall := flag.Duration("shard-stall", 2*time.Minute, "supervisor: restart a shard whose journal stops growing for this long (0 = off)")
	shardRestarts := flag.Int("shard-restarts", 2, "supervisor: restarts per shard before abandoning it")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsexp: %v\n", err)
		os.Exit(exitUsage)
	}
	method, err := lp.ParseMethod(*lpMethod)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsexp: %v\n", err)
		os.Exit(exitUsage)
	}
	shardMode := *shardSpec != ""
	mergeMode := *shardMergeDir != ""
	superviseMode := *shardSupervise > 0
	modes := 0
	for _, on := range []bool{shardMode, mergeMode, superviseMode} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "cpsexp: -shard, -shard-supervise, and -shard-merge are mutually exclusive")
		os.Exit(exitUsage)
	}
	if modes > 0 && (*journal != "" || *resume) {
		fmt.Fprintln(os.Stderr, "cpsexp: shard modes manage their own journals; drop -journal/-resume")
		os.Exit(exitUsage)
	}
	if *trace {
		telemetry.Default().EnableTracing(true)
	}
	run := cli.StartRun(cli.RunOptions{
		Tool: "cpsexp", Seed: int64(*seed), Dir: *obsDir,
		StderrLevel: lvl, Trace: *trace,
	})
	run.Manifest.CaptureFlags(flag.CommandLine)
	logger := run.Log
	fatal := func(err error) {
		logger.Error("fatal", obs.F("err", err))
		run.Close()
		os.Exit(exitFatal)
	}

	// The aggregation endpoints ride the debug mux whenever it is on, so a
	// supervising cpsexp (or any process the operator points shards at)
	// doubles as the fleet's rollup server.
	agg := shard.NewAggregator()
	debugBound, stopDebug := cli.StartDebugWith(*debugAddr, logger, mountAggregator(agg))
	defer stopDebug()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	if superviseMode {
		reportURL := ingestURL(*shardReport)
		if reportURL == "" && debugBound != "" {
			reportURL = ingestURL(debugBound)
		}
		if err := os.MkdirAll(*shardDir, 0o755); err != nil {
			fatal(err)
		}
		// The supervise root span anchors the fleet trace: every shard.child
		// launch parents under it, and every child process links back to its
		// launch span through the inherited traceparent.
		supSpan, supCtx := telemetry.Default().StartSpanCtx(ctx,
			"shard.supervise", fmt.Sprintf("%d shards", *shardSupervise))
		report, supErr := superviseShards(supCtx, *shardSupervise, *shardDir, reportURL,
			*shardStall, *shardRestarts, *seed, logger)
		supSpan.End()
		if report != nil {
			for _, s := range report.Shards {
				logger.Info("shard supervised", obs.F("shard", s.Index),
					obs.F("done", s.Done), obs.F("restarts", s.Restarts),
					obs.F("stalls", s.Stalls), obs.F("err", s.Err))
			}
		}
		if supErr != nil {
			cli.ExitCanceled(ctx, supErr, "shard supervision interrupted")
			fatal(supErr)
		}
		logger.Info("all shards completed", obs.F("shards", *shardSupervise),
			obs.F("dir", *shardDir))
		cli.MustPrintf("supervised %d shards into %s; merge with: cpsexp -shard-merge %s [same sweep flags]\n",
			*shardSupervise, *shardDir, *shardDir)
		cli.WriteMetrics(*metricsPath, *trace, logger)
		if err := run.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpsexp: %v\n", err)
			os.Exit(exitFatal)
		}
		return
	}

	faultLog := &experiments.FaultLog{}
	var chaosHook func(string) error
	if *chaosRate > 0 {
		chaosHook = faultinject.New(*seed).Arm("experiments.trial", faultinject.Error, *chaosRate).Hook
		logger.Warn("chaos armed", obs.F("rate", *chaosRate), obs.F("seed", *seed))
	}
	cache := solvecache.New(*solveCache)
	cfg := experiments.Config{
		Trials:    *trials,
		Seed:      *seed,
		Parallel:  parallel.Options{Context: ctx, Log: logger},
		Faults:    experiments.FaultPolicy{MaxFailureRate: *faultRate, Hook: chaosHook, Log: faultLog},
		Log:       logger,
		Cache:     cache,
		WarmStart: *warmStart,
		LPMethod:  method,
		ScreenK:   *screenK,
	}
	// grid is the effective system whether or not -grid was given, so the
	// interventions digest and the screen.json artifact always describe the
	// graph the sweep actually ran on.
	grid, err := cli.LoadModel(*gridPath, true)
	if err != nil {
		fatal(err)
	}
	if *gridPath != "" {
		cfg.Graph = grid
		run.AddInput(*gridPath)
	}
	if *interventions {
		// The candidate menu depends on the grid file's *content*, which no
		// flag captures — bake its digest into the sweep key so shards and
		// merges over different menus can never be mixed.
		sweepKeyExtra["interventions-digest"] = gridgen.InterventionSetDigest(cfg.InterventionMenu())
	}
	defer func() {
		if st := cache.Stats(); st.Capacity > 0 {
			logger.Info("solve cache",
				obs.F("hits", st.Hits), obs.F("misses", st.Misses),
				obs.F("evictions", st.Evictions), obs.F("size", st.Size),
				obs.F("capacity", st.Capacity))
		}
	}()

	var sr *shardRun
	var mergeRes *shard.MergeResult
	switch {
	case shardMode:
		sr, err = prepareShardRun(*shardSpec, *shardDir, *seed, *retries,
			*trialTimeout, ingestURL(*shardReport), logger)
		if err != nil {
			fatal(err)
		}
		cfg.Sweep = sr.Sweep
		cfg.Shard = &sr.Assignment
	case mergeMode:
		var sweep *checkpoint.Sweep
		sweep, mergeRes, err = mergeShards(*shardMergeDir, logger)
		if err != nil {
			fatal(err)
		}
		sweep.Retry = checkpoint.Retrier{MaxRetries: *retries, Seed: *seed, Log: logger}
		cfg.Sweep = sweep
	default:
		if *resume && *journal == "" {
			fatal(fmt.Errorf("-resume requires -journal"))
		}
		if *journal != "" || *retries > 0 || *trialTimeout > 0 {
			sweep := &checkpoint.Sweep{
				Retry:    checkpoint.Retrier{MaxRetries: *retries, Seed: *seed, Log: logger},
				Watchdog: checkpoint.Watchdog{Deadline: *trialTimeout},
				Log:      logger,
			}
			if *journal != "" {
				var j *checkpoint.Journal
				var rep *checkpoint.Replay
				var err error
				if *resume {
					run.AddInput(*journal)
					j, rep, err = checkpoint.Resume(*journal, checkpoint.Options{})
					if err != nil {
						fatal(err)
					}
					if rep.TruncatedBytes > 0 {
						logger.Warn("journal tail truncated",
							obs.F("journal", *journal), obs.F("bytes", rep.TruncatedBytes))
					}
					logger.Info("resuming from journal",
						obs.F("journal", *journal), obs.F("completed_trials", rep.Len()))
					run.Manifest.Note("resumed %d trials from %s", rep.Len(), *journal)
				} else {
					j, err = checkpoint.Create(*journal, checkpoint.Options{})
					if err != nil {
						fatal(err)
					}
				}
				defer j.Close()
				sweep.Journal = j
				sweep.Replay = rep
			}
			cfg.Sweep = sweep
		}
	}
	if *mode == "matrix" {
		cfg.NoiseMode = core.MatrixNoise
	}
	if *quick {
		cfg.Trials = 2
		cfg.ActorGrid = []int{2, 6}
		cfg.SigmaGrid = []float64{0, 0.3}
		cfg.PaSamples = 6
		cfg.NoiseMode = core.MatrixNoise
	}

	runners := map[string]func(experiments.Config) (*stats.Table, error){
		"2": experiments.Fig2, "3": experiments.Fig3, "4": experiments.Fig4,
		"5": experiments.Fig5, "6": experiments.Fig6, "7": experiments.Fig7,
		"baseline":      experiments.BaselineComparison,
		"deception":     experiments.Deception,
		"vectors":       experiments.AttackVectors,
		"security":      experiments.SecurityPremium,
		"hardening":     experiments.HardeningComparison,
		"interventions": experiments.Interventions,
	}
	var order []string
	if *fig == "all" {
		order = []string{"2", "3", "4", "5", "6", "7"}
	} else if *fig == "ext" {
		order = []string{"baseline", "deception", "vectors", "security", "hardening"}
	} else if _, ok := runners[*fig]; ok {
		order = []string{*fig}
	} else {
		fatal(fmt.Errorf("unknown figure %q (want 2..7, all, ext, baseline, deception, vectors, interventions)", *fig))
	}
	if *interventions {
		if *fig == "all" {
			order = []string{"interventions"} // shorthand: redesign sweep only
		} else if *fig != "interventions" {
			order = append(order, "interventions")
		}
	}

	var csvOutputs []string
	for fi, f := range order {
		start := time.Now()
		tb, err := runners[f](cfg)
		if err != nil {
			if sr != nil {
				sr.finish(false, err, 0)
			}
			cli.ExitCanceled(ctx, err,
				fmt.Sprintf("%d/%d figures completed (interrupted in fig %s)", fi, len(order), f))
			fatal(fmt.Errorf("fig %s: %w", f, err))
		}
		if sr != nil {
			continue // a shard's product is its journal, not tables
		}
		cli.MustPrintf("%s\n(%.1fs)\n\n", tb.Render(), time.Since(start).Seconds())
		if *chart {
			cli.MustPrintln(tb.Chart(72, 18))
		}
		if *csvDir != "" {
			// Atomic write into a directory created on demand: a killed
			// run can never leave a half-written CSV.
			path := filepath.Join(*csvDir, "fig"+f+".csv")
			data := []byte(tb.CSV())
			if err := atomicio.MkdirAllAndWrite(path, data, 0o644); err != nil {
				fatal(err)
			}
			csvOutputs = append(csvOutputs, path)
			run.AddOutput(path)
			logger.Info("wrote csv", obs.F("path", path), obs.F("bytes", len(data)),
				obs.F("crc32", fmt.Sprintf("%08x", tb.Checksum())))
		}
	}
	// With screening on, persist the grid's vulnerability ranking next to the
	// run's other artifacts so cpsreport can render it. The ranking is the
	// same deterministic screen every trial scenario reuses internally.
	if *screenK > 0 && *obsDir != "" && sr == nil {
		data, err := screenArtifact(grid, *screenK, *seed, cache, method)
		if err != nil {
			fatal(fmt.Errorf("screen artifact: %w", err))
		}
		path := filepath.Join(*obsDir, "screen.json")
		if err := atomicio.MkdirAllAndWrite(path, data, 0o644); err != nil {
			fatal(err)
		}
		run.AddOutput(path)
		logger.Info("wrote screen ranking", obs.F("path", path), obs.F("k", *screenK))
	}
	if sweep := cfg.Sweep; sweep != nil && sweep.Journal != nil {
		logger.Info("journal summary", obs.F("journal", sweep.Journal.Path()),
			obs.F("executed", sweep.Executed()), obs.F("replayed", sweep.Replayed()),
			obs.F("seq", sweep.Journal.Seq()))
		if sr == nil {
			run.AddOutput(sweep.Journal.Path())
		}
	}
	// Fault-tolerance summary: one structured event per failed-but-tolerated
	// trial, plus an aggregate. Tolerated failures keep the sweep going but
	// degrade the data, so they turn the exit code non-zero below.
	abandoned := len(faultLog.Failures())
	if fails := faultLog.Failures(); len(fails) > 0 {
		for _, f := range fails {
			logger.Warn("tolerated trial failure", obs.F("point", f.Point),
				obs.F("trial_index", f.Trial), obs.F("err", f.Err))
		}
		logger.Error("trials abandoned after retries", obs.F("abandoned", abandoned),
			obs.F("trials", faultLog.Trials()), obs.F("rate", faultLog.FailureRate()),
			obs.F("exit_code", exitAbandonedTrials))
	}
	if sr != nil {
		if err := sr.finish(true, nil, abandoned); err != nil {
			fatal(err)
		}
	}
	if mergeRes != nil {
		logger.Info("merge verified", obs.F("shards", mergeRes.Count),
			obs.F("trials_replayed", cfg.Sweep.Replayed()))
		if err := writeMergedManifest(*shardMergeDir, mergeRes, *seed, csvOutputs); err != nil {
			fatal(err)
		}
		logger.Info("wrote merged manifest",
			obs.F("path", filepath.Join(*shardMergeDir, "manifest.json")))
	}
	cli.WriteMetrics(*metricsPath, *trace, logger)
	if *metricsPath != "" {
		run.AddOutput(*metricsPath)
	}
	if err := run.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cpsexp: %v\n", err)
		os.Exit(exitFatal)
	}
	if abandoned > 0 {
		os.Exit(exitAbandonedTrials)
	}
}
