// Sharded-sweep modes for cpsexp: -shard i/n runs one slice of the sweep
// into its own crash-safe journal, -shard-supervise n runs all n slices as
// supervised child processes of this binary, and -shard-merge DIR proves
// the slices back together into output byte-identical to a single-process
// run. See internal/shard for the partition, supervision, and merge
// machinery; this file is the CLI glue.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"cpsguard/internal/checkpoint"
	"cpsguard/internal/manifest"
	"cpsguard/internal/obs"
	"cpsguard/internal/shard"
	"cpsguard/internal/telemetry"
)

// sweepKeyFlags are the result-affecting flags hashed into the sweep key.
// Shards and merges must agree on these for their journals to describe the
// same trial space; observability, caching, and sharding flags are excluded
// because they never change which trials run or what they produce.
var sweepKeyFlags = []string{"fig", "trials", "seed", "mode", "quick", "max-fault-rate", "chaos",
	"screen-k", "interventions", "grid"}

// sweepKeyExtra holds result-affecting facts that no flag value captures —
// today the interventions candidate-menu digest, which depends on the
// *content* of the -grid file, not just its path. main() populates it before
// any sweep key is computed.
var sweepKeyExtra = map[string]string{}

// sweepKey fingerprints the effective sweep configuration. It reuses the
// manifest's order-insensitive flag checksum, so defaulted and explicit
// values hash identically.
func sweepKey() string {
	vals := map[string]string{}
	for _, name := range sweepKeyFlags {
		if f := flag.Lookup(name); f != nil {
			vals[name] = f.Value.String()
		}
	}
	for k, v := range sweepKeyExtra {
		vals[k] = v
	}
	return manifest.ConfigChecksum(vals)
}

// shardRun is the state of one -shard i/n invocation: the resumed journal,
// the sweep bundle threaded into the experiment runners, and the manifest
// that finish() persists whatever happens.
type shardRun struct {
	Assignment shard.Assignment
	Dir        string
	Sweep      *checkpoint.Sweep
	Manifest   *shard.Manifest
	journal    *checkpoint.Journal
	log        *obs.Logger
	reportURL  string
	stopReport func()
}

// prepareShardRun opens (or resumes) the shard's journal under
// parentDir/shard-III-of-NNN and builds its sweep bundle. Restarts are the
// normal case — the supervisor relaunches crashed shards — so the journal
// is always opened with Resume, and every resume or torn-tail repair lands
// in the shard manifest's fault history.
func prepareShardRun(spec, parentDir string, seed uint64, retries int,
	trialTimeout time.Duration, reportURL string, log *obs.Logger) (*shardRun, error) {
	a, err := shard.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(parentDir, a.DirName())
	man := shard.NewManifest(a, seed, sweepKey())
	if prev, err := shard.LoadManifest(dir); err == nil {
		if prev.SweepKey != man.SweepKey || prev.Seed != seed {
			return nil, fmt.Errorf("shard dir %s holds a different sweep (key %.12s, want %.12s); point -shard-dir elsewhere or clear it",
				dir, prev.SweepKey, man.SweepKey)
		}
		man.Faults = prev.Faults
		man.Executed = prev.Executed
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	j, rep, err := checkpoint.Resume(filepath.Join(dir, shard.JournalName), checkpoint.Options{})
	if err != nil {
		return nil, err
	}
	if rep.TruncatedBytes > 0 {
		man.AddFault("torn_tail", "truncated %d torn bytes on resume", rep.TruncatedBytes)
		log.Warn("shard journal tail truncated", obs.F("shard", a.Spec()),
			obs.F("bytes", rep.TruncatedBytes))
	}
	if rep.Len() > 0 {
		man.AddFault("resumed", "restart resumed %d journaled trials", rep.Len())
		log.Info("shard resuming from journal", obs.F("shard", a.Spec()),
			obs.F("completed_trials", rep.Len()))
	}
	sr := &shardRun{
		Assignment: a, Dir: dir, Manifest: man, journal: j, log: log,
		reportURL: reportURL,
		Sweep: &checkpoint.Sweep{
			Journal: j, Replay: rep,
			Retry:    checkpoint.Retrier{MaxRetries: retries, Seed: seed, Log: log},
			Watchdog: checkpoint.Watchdog{Deadline: trialTimeout},
			Log:      log,
		},
	}
	sr.startReporting()
	return sr, nil
}

// startReporting streams this shard's counter snapshots to the supervisor's
// aggregation endpoint every few seconds. Strictly best-effort: a dead
// aggregator must never slow or fail the shard, so errors are debug events.
func (s *shardRun) startReporting() {
	if s.reportURL == "" {
		s.stopReport = func() {}
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.stopReport = cancel
	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				s.post()
			}
		}
	}()
}

func (s *shardRun) post() {
	// Timings ride along so the supervisor's rollup can merge fleet latency
	// distributions, not just counters.
	snap := telemetry.Default().Snapshot(telemetry.SnapshotOptions{Timings: true})
	if err := shard.PostSnapshot(s.reportURL, s.Assignment.Spec(), snap); err != nil {
		s.log.Debug("snapshot post failed", obs.F("url", s.reportURL), obs.F("err", err))
	}
}

// finish persists the shard's artifacts: the telemetry snapshot, the final
// manifest (completed or not), and — when reporting — one last snapshot
// post. Called on both success and failure so a crashed shard still leaves
// an honest shard.json behind for the supervisor and the merge.
func (s *shardRun) finish(completed bool, runErr error, abandoned int) error {
	s.stopReport()
	s.Manifest.Executed += s.Sweep.Executed()
	s.Manifest.Replayed = s.Sweep.Replayed()
	s.Manifest.JournalRecords = int(s.journal.Seq())
	s.Manifest.Completed = completed
	if runErr != nil {
		s.Manifest.AddFault("crashed", "sweep failed: %v", runErr)
	}
	if abandoned > 0 {
		s.Manifest.AddFault("abandoned_trials", "%d trials abandoned after retries (journaled as failures)", abandoned)
	}
	if err := s.journal.Close(); err != nil {
		return err
	}
	if err := telemetry.Default().WriteSnapshot(
		filepath.Join(s.Dir, shard.MetricsName), telemetry.SnapshotOptions{Timings: true}); err != nil {
		return err
	}
	// When this shard inherited (or started) a trace, leave its span tree in
	// the shard dir; cpsreport -trace-merge stitches the per-shard files plus
	// the supervisor's own trace.json into one fleet timeline.
	if telemetry.Default().Tracing() {
		if err := telemetry.Default().WriteChromeTrace(
			filepath.Join(s.Dir, "trace.json")); err != nil {
			s.log.Warn("shard trace not written", obs.F("err", err))
		}
	}
	s.Manifest.StampJournal(s.Dir)
	if err := s.Manifest.Write(s.Dir); err != nil {
		return err
	}
	if s.reportURL != "" {
		s.post()
	}
	s.log.Info("shard finished", obs.F("shard", s.Assignment.Spec()),
		obs.F("completed", completed), obs.F("executed", s.Sweep.Executed()),
		obs.F("replayed", s.Sweep.Replayed()), obs.F("records", s.Manifest.JournalRecords))
	return nil
}

// execHandle adapts a child cpsexp process to shard.Handle.
type execHandle struct {
	cmd  *exec.Cmd
	log  *obs.Logger
	span *telemetry.Span
}

func (h *execHandle) Wait() error {
	err := h.cmd.Wait()
	h.span.End()
	var exitErr *exec.ExitError
	if errors.As(err, &exitErr) && exitErr.ExitCode() == exitAbandonedTrials {
		// The shard finished its sweep; some trials were abandoned after
		// retries and journaled as failures. That is a degraded success:
		// restarting would only replay the same failures, so report done
		// and let the merge surface the abandoned trials.
		h.log.Warn("shard completed with abandoned trials", obs.F("exit", exitAbandonedTrials))
		return nil
	}
	return err
}

func (h *execHandle) Kill() {
	if h.cmd.Process != nil {
		h.cmd.Process.Kill()
	}
}

// childArgs rebuilds the command line for shard index of count: the current
// invocation's sweep flags plus the shard assignment, minus everything
// supervise-specific. Children journal and report; they do not print
// tables or write CSVs.
func childArgs(index, count int, parentDir, reportURL string) []string {
	args := []string{
		"-shard", fmt.Sprintf("%d/%d", index, count),
		"-shard-dir", parentDir,
	}
	if reportURL != "" {
		args = append(args, "-shard-report", reportURL)
	}
	for _, name := range []string{"fig", "trials", "seed", "mode", "quick", "max-fault-rate", "chaos",
		"screen-k", "interventions", "grid",
		"retries", "trial-timeout", "solve-cache", "warm-start", "log-level"} {
		f := flag.Lookup(name)
		if f == nil || f.Value.String() == f.DefValue {
			continue
		}
		if f.Value.String() == "true" { // boolean flags render without a value
			args = append(args, "-"+name)
			continue
		}
		args = append(args, "-"+name, f.Value.String())
	}
	return args
}

// superviseShards runs count child shards of this binary to completion
// under the shard supervisor, writes the supervision report to
// parentDir/supervisor.json, and returns it.
func superviseShards(ctx context.Context, count int, parentDir, reportURL string,
	stall time.Duration, maxRestarts int, seed uint64, log *obs.Logger) (*shard.Report, error) {
	bin, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("cannot locate own binary for shard children: %w", err)
	}
	sup := &shard.Supervisor{
		Count: count,
		Launch: func(ctx context.Context, index, attempt int) (shard.Handle, error) {
			cmd := exec.CommandContext(ctx, bin, childArgs(index, count, parentDir, reportURL)...)
			cmd.Stdout = os.Stderr // children print no tables; anything else is diagnostics
			cmd.Stderr = os.Stderr
			// One span per launch attempt, parented under the supervise root
			// threaded through ctx; the child inherits the trace through the
			// environment, so its spans link back to this one in the merged
			// fleet timeline.
			sp, _ := telemetry.Default().StartSpanCtx(ctx,
				"shard.child", fmt.Sprintf("%d/%d attempt %d", index, count, attempt))
			cmd.Env = childEnv(os.Environ(), sp)
			if err := cmd.Start(); err != nil {
				sp.End()
				return nil, err
			}
			return &execHandle{cmd: cmd, span: sp,
				log: log.WithStage(fmt.Sprintf("shard %d/%d", index, count))}, nil
		},
		Progress: func(index int) int64 {
			a := shard.Assignment{Index: index, Count: count}
			fi, err := os.Stat(filepath.Join(parentDir, a.DirName(), shard.JournalName))
			if err != nil {
				return 0
			}
			return fi.Size()
		},
		StallTimeout: stall,
		MaxRestarts:  maxRestarts,
		Backoff:      checkpoint.Retrier{Seed: seed, BaseDelay: 500 * time.Millisecond, MaxDelay: 15 * time.Second},
		Log:          log,
	}
	report, runErr := sup.Run(ctx)
	if report != nil {
		if err := writeSupervisorReport(parentDir, report); err != nil {
			log.Warn("supervisor report not written", obs.F("err", err))
		}
	}
	return report, runErr
}

// childEnv builds a child shard's environment: the parent's, minus any
// stale trace inheritance, plus a traceparent naming sp when tracing is on
// (cli.StartRun in the child adopts it).
func childEnv(environ []string, sp *telemetry.Span) []string {
	env := environ[:0:0]
	for _, kv := range environ {
		if !strings.HasPrefix(kv, telemetry.TraceParentEnv+"=") {
			env = append(env, kv)
		}
	}
	if tc, ok := telemetry.Default().ChildTraceContext(sp); ok {
		env = append(env, telemetry.TraceParentEnv+"="+tc.TraceParent())
	}
	return env
}

func writeSupervisorReport(parentDir string, report *shard.Report) error {
	data, err := jsonIndent(report)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(parentDir, "supervisor.json"), data, 0o644)
}

// mergeShards validates and unions the shard directories under parentDir
// and returns the strict-replay sweep the figure runners must consume plus
// the merge result for the manifest. Every trial of the merged run must
// come from a shard journal; a gap fails the run.
func mergeShards(parentDir string, log *obs.Logger) (*checkpoint.Sweep, *shard.MergeResult, error) {
	dirs, err := shard.DiscoverShards(parentDir)
	if err != nil {
		return nil, nil, err
	}
	res, err := shard.Merge(dirs, shard.MergeOptions{ExpectKey: sweepKey(), Log: log})
	if err != nil {
		return nil, nil, err
	}
	log.Info("shards merged", obs.F("shards", res.Count), obs.F("trials", res.Trials))
	sweep := &checkpoint.Sweep{Replay: res.Replay, RequireReplay: true, Log: log}
	return sweep, res, nil
}

// writeMergedManifest persists the merge's provenance record as
// parentDir/manifest.json: the standard run-manifest schema with every
// shard journal digested as an input, the merged CSVs as outputs, and the
// full per-shard fault history in the notes — so cpsreport can render and
// diff a merged run like any other.
func writeMergedManifest(parentDir string, res *shard.MergeResult, seed uint64, outputs []string) error {
	m := manifest.New("cpsexp-merge", int64(seed))
	m.CaptureFlags(flag.CommandLine)
	res.Stamp(m)
	for _, out := range outputs {
		m.AddOutput(out)
	}
	return m.Write(parentDir)
}

// ingestURL turns a -shard-report value (bare host:port or http:// URL)
// into the aggregator's ingest endpoint.
func ingestURL(s string) string {
	if s == "" {
		return ""
	}
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		s = "http://" + s
	}
	return s + "/shards/ingest"
}

// mountAggregator returns the debug-mux hook that serves the fleet
// aggregation endpoints.
func mountAggregator(agg *shard.Aggregator) func(mux *http.ServeMux) {
	return func(mux *http.ServeMux) { mux.Handle("/shards/", agg) }
}

func jsonIndent(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
