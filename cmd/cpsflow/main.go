// Command cpsflow dispatches an energy model to its social-welfare optimum
// and prints flows, nodal prices and (optionally) per-actor profits.
//
// Usage:
//
//	cpsflow [-model model.json] [-stress] [-actors N] [-seed S]
//
// Without -model the built-in six-state western-US model is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cpsguard/internal/actors"
	"cpsguard/internal/cli"
	"cpsguard/internal/flow"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/rng"
)

func main() {
	model := flag.String("model", "", "model JSON file (default: built-in westgrid)")
	stress := flag.Bool("stress", true, "stress the built-in model (ignored with -model)")
	nActors := flag.Int("actors", 0, "divide profits among N random actors (0 = skip)")
	seed := flag.Uint64("seed", 1, "ownership random seed")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	logger := obs.New("cpsflow", obs.Sink{W: os.Stderr, Format: obs.Text, Min: obs.LevelInfo})
	fatal := func(err error) {
		logger.Error("fatal", obs.F("err", err))
		os.Exit(1)
	}

	stopDebug := cli.StartDebug(*debugAddr, logger)
	defer stopDebug()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	g, err := cli.LoadModel(*model, *stress)
	if err != nil {
		fatal(err)
	}
	r, err := flow.DispatchOpts(g, flow.Options{LP: lp.Options{Ctx: ctx}})
	if err != nil {
		cli.ExitCanceled(ctx, err, "dispatch interrupted; no flows to report")
		fatal(err)
	}

	cli.MustPrintln(g)
	cli.MustPrintf("social welfare: %.2f  demand served: %.1f / %.1f  (LP pivots: %d)\n\n",
		r.Welfare, r.Served(), g.TotalDemand(), r.Iterations)

	cli.MustPrintln("nodal prices (λ):")
	ids := make([]string, 0, len(r.Price))
	for id := range r.Price {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		cli.MustPrintf("  %-20s %8.2f\n", id, r.Price[id])
	}

	cli.MustPrintln("\nnonzero flows:")
	eids := g.AssetIDs()
	for _, id := range eids {
		if f := r.Flow[id]; f > 1e-9 {
			e := g.Edge(id)
			rent := r.CapacityRent[id]
			mark := ""
			if rent > 1e-9 {
				mark = fmt.Sprintf("   (congested, rent %.2f)", rent)
			}
			cli.MustPrintf("  %-18s %8.1f / %-8.1f%s\n", id, f, e.Capacity, mark)
		}
	}

	if *nActors > 0 {
		o := actors.RandomOwnership(g, *nActors, rng.New(*seed))
		p, err := actors.LMPDivision{}.Divide(g, r, o)
		if err != nil {
			fatal(err)
		}
		cli.MustPrintf("\nper-actor profits (%d actors, seed %d):\n", *nActors, *seed)
		as := p
		names := make([]string, 0, len(as))
		for a := range as {
			names = append(names, a)
		}
		sort.Strings(names)
		for _, a := range names {
			cli.MustPrintf("  %-8s %12.2f  (%d assets)\n", a, as[a], len(o.Assets(a)))
		}
		cli.MustPrintf("  %-8s %12.2f  (= welfare)\n", "total", p.Total())
	}
}
