// Command cpsdefend plays one full adversary-vs-defenders round (Section
// II-F / Experiment 3): the strategic adversary plans an attack, the
// defenders estimate her targets from their own noisy models and invest,
// and the round is settled against ground truth.
//
// Usage:
//
//	cpsdefend [-model model.json] [-actors N] [-seed S]
//	          [-attacker-sigma σ] [-defender-sigma σ] [-speculated-sigma σ]
//	          [-attack-budget MA] [-defense-budget MD] [-collab]
package main

import (
	"flag"
	"os"
	"sort"

	"cpsguard/internal/cli"
	"cpsguard/internal/core"
	"cpsguard/internal/obs"
	"cpsguard/internal/parallel"
)

func main() {
	model := flag.String("model", "", "model JSON file (default: built-in stressed westgrid)")
	nActors := flag.Int("actors", 4, "number of random actors")
	seed := flag.Uint64("seed", 1, "random seed")
	atkSigma := flag.Float64("attacker-sigma", 0, "adversary knowledge noise")
	defSigma := flag.Float64("defender-sigma", 0.1, "defender knowledge noise")
	specSigma := flag.Float64("speculated-sigma", 0.1, "defender's estimate of adversary noise")
	atkBudget := flag.Float64("attack-budget", 1, "attack budget MA")
	defBudget := flag.Float64("defense-budget", 12, "system-wide defense budget (split evenly)")
	collab := flag.Bool("collab", false, "collaborative (cost-shared) defense")
	samples := flag.Int("pa-samples", 16, "speculated-SA samples for Pa estimation")
	mode := flag.String("mode", "graph", "noise mode: graph or matrix")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	logger := obs.New("cpsdefend", obs.Sink{W: os.Stderr, Format: obs.Text, Min: obs.LevelInfo})
	fatal := func(err error) {
		logger.Error("fatal", obs.F("err", err))
		os.Exit(1)
	}

	stopDebug := cli.StartDebug(*debugAddr, logger)
	defer stopDebug()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	g, err := cli.LoadModel(*model, true)
	if err != nil {
		fatal(err)
	}
	s := core.NewScenario(g, *nActors, *seed)
	s.Parallel = parallel.Options{Context: ctx, Log: logger}
	nm, err := cli.ParseNoiseMode(*mode)
	if err != nil {
		fatal(err)
	}

	res, err := core.PlayRound(s, core.GameConfig{
		AttackBudget:          *atkBudget,
		AttackerSigma:         *atkSigma,
		DefenderSigma:         *defSigma,
		SpeculatedSigma:       *specSigma,
		DefenseBudgetPerActor: *defBudget / float64(*nActors),
		Collaborative:         *collab,
		PaSamples:             *samples,
		NoiseMode:             nm,
		Seed:                  *seed,
		Ctx:                   ctx,
	})
	if err != nil {
		cli.ExitCanceled(ctx, err, "round interrupted before settlement; no results to report")
		fatal(err)
	}

	style := "independent"
	if *collab {
		style = "collaborative"
	}
	cli.MustPrintf("system: %s\n", g)
	cli.MustPrintf("actors: %d  defense: %s, budget %.1f total (%.2f per actor)\n",
		*nActors, style, *defBudget, *defBudget/float64(*nActors))
	cli.MustPrintf("noise: attacker σ=%.2f, defender σ=%.2f, speculated σ=%.2f\n\n",
		*atkSigma, *defSigma, *specSigma)

	cli.MustPrintf("adversary attacked (%d): %v\n", len(res.Plan.Targets), res.Plan.Targets)
	cli.MustPrintf("adversary captured:      %v\n", res.Plan.Actors)

	defended := make([]string, 0, len(res.Defended))
	for t := range res.Defended {
		defended = append(defended, t)
	}
	sort.Strings(defended)
	cli.MustPrintf("defenders protected (%d): %v  (spent %.2f)\n\n", len(defended), defended, res.DefenseSpent)

	cli.MustPrintf("SA anticipated profit:          %12.2f\n", res.Anticipated)
	cli.MustPrintf("SA realized (undefended):       %12.2f\n", res.RealizedUndefended)
	cli.MustPrintf("SA realized (against defense):  %12.2f\n", res.RealizedDefended)
	cli.MustPrintf("defense effectiveness:          %12.2f\n", res.Effectiveness)
}
