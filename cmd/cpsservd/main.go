// Command cpsservd serves scenario analyses over HTTP, backed by a
// content-addressed on-disk result store: identical scenario configurations
// are solved once and served from the store afterward (integrity-verified
// on every read), concurrent duplicates coalesce onto one in-flight run,
// and the solver pool is protected by a bounded admission queue, per-request
// deadlines, capped-backoff retries, and a per-scenario circuit breaker.
//
// Usage:
//
//	cpsservd -store DIR [-addr :8780] [-workers N] [-queue N]
//	         [-deadline D] [-max-deadline D] [-retries N]
//	         [-breaker-fails N] [-breaker-cooldown D]
//	         [-solve-cache N] [-warm-start] [-lp-method M] [-run-workers N]
//	         [-drain-timeout D] [-chaos RATE] [-trace]
//	         [-debug-addr ADDR] [-log-level LEVEL]
//
// Endpoints:
//
//	POST /scenarios                  submit a scenario (JSON body; ?wait=1 blocks)
//	GET  /scenarios                  list committed results
//	GET  /runs/{id}                  run status + artifact digests
//	GET  /runs/{id}/artifacts/{name} download one artifact (digest-checked)
//	GET  /runs/{id}/events           live JSONL event stream
//	GET  /healthz, /readyz           liveness / readiness
//
// On SIGINT/SIGTERM the server drains: it stops admitting work (503
// draining, /readyz unready), lets in-flight runs finish and commit (up to
// -drain-timeout, then cancels them — uncommitted scenarios are simply
// recomputed on resubmit), fsyncs the store index, and exits. Startup runs
// store recovery: crash debris under inflight/ is removed and committed
// entries that fail integrity verification are quarantined, never served.
//
// -chaos injects deterministic transient faults into the trial layer (the
// same site as cpsexp -chaos) for resilience testing through the HTTP path.
//
// Exit codes: 0 clean shutdown; 1 fatal error; 2 usage; 130 interrupted
// before the listener was up.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"cpsguard/internal/cli"
	"cpsguard/internal/faultinject"
	"cpsguard/internal/lp"
	"cpsguard/internal/obs"
	"cpsguard/internal/servd"
	"cpsguard/internal/solvecache"
	"cpsguard/internal/telemetry"
)

const (
	exitFatal = 1
	exitUsage = 2
)

func main() {
	addr := flag.String("addr", "localhost:8780", "listen address for the scenario API")
	storeDir := flag.String("store", "", "result store directory (required)")
	workers := flag.Int("workers", 2, "concurrent scenario runs")
	queueDepth := flag.Int("queue", 8, "admission queue depth; beyond it submits get 429")
	deadline := flag.Duration("deadline", 5*time.Minute, "default per-run deadline (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 10*time.Minute, "cap on request-supplied deadline_ms")
	retries := flag.Int("retries", 1, "per-run retries with capped backoff for transient failures")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive failures that open a scenario's circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", 15*time.Second, "open-circuit cooldown before a probe is admitted")
	solveCache := flag.Int("solve-cache", 4096, "shared N-entry LRU dispatch-solve memo across all requests (0 = off)")
	warmStart := flag.Bool("warm-start", false, "warm-start perturbed dispatch solves from baseline bases")
	lpMethod := flag.String("lp-method", "auto", "dispatch simplex implementation: auto, dense, rows, bounded, or revised")
	runWorkers := flag.Int("run-workers", 0, "trial fan-out inside each run (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful-drain budget on SIGTERM before in-flight runs are canceled")
	chaosRate := flag.Float64("chaos", 0, "fail this fraction of trials with an injected transient error (resilience testing)")
	chaosSeed := flag.Uint64("chaos-seed", 1, "seed for -chaos fault injection")
	traceFlag := flag.Bool("trace", false, "record request/run spans and emit Traceparent response headers")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars, /debug/pprof on this address")
	logLevel := flag.String("log-level", "info", "stderr log verbosity: debug, info, warn, or error")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsservd: %v\n", err)
		os.Exit(exitUsage)
	}
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "cpsservd: -store DIR is required")
		os.Exit(exitUsage)
	}
	method, err := lp.ParseMethod(*lpMethod)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsservd: %v\n", err)
		os.Exit(exitUsage)
	}
	logger := obs.New("cpsservd", obs.Sink{W: os.Stderr, Format: obs.Text, Min: lvl})

	telemetry.Default().SetLabel("cpsservd")
	if *traceFlag {
		telemetry.Default().EnableTracing(true)
		telemetry.Default().SetSpanCapacity(cli.RunSpanCapacity)
	}
	// A tracing supervisor hands its trace context down through the
	// environment; adopting it makes this server's request spans part of the
	// caller's fleet trace even without a local -trace.
	if tc, ok := telemetry.TraceContextFromEnv(); ok {
		telemetry.Default().SetTraceContext(tc)
		telemetry.Default().EnableTracing(true)
		telemetry.Default().SetSpanCapacity(cli.RunSpanCapacity)
	}

	store, rep, err := servd.Open(*storeDir)
	if err != nil {
		logger.Error("store open failed", obs.F("dir", *storeDir), obs.F("err", err))
		os.Exit(exitFatal)
	}
	logger.Info("store recovered", obs.F("dir", *storeDir),
		obs.F("entries", rep.Entries), obs.F("quarantined", len(rep.Quarantined)),
		obs.F("removed_inflight", rep.RemovedInflight))
	for _, key := range rep.Quarantined {
		logger.Warn("entry quarantined at startup", obs.F("key", key))
	}

	var chaosHook func(string) error
	if *chaosRate > 0 {
		chaosHook = faultinject.New(*chaosSeed).Arm("experiments.trial", faultinject.Error, *chaosRate).Hook
		logger.Warn("chaos armed", obs.F("rate", *chaosRate), obs.F("seed", *chaosSeed))
	}
	runner := &servd.ExperimentRunner{
		Cache:       solvecache.New(*solveCache),
		WarmStart:   *warmStart,
		LPMethod:    method,
		Hook:        chaosHook,
		StderrLevel: obs.LevelWarn,
		Workers:     *runWorkers,
	}
	srv, err := servd.New(servd.Options{
		Store: store, Runner: runner,
		Workers: *workers, QueueDepth: *queueDepth,
		DefaultDeadline: *deadline, MaxDeadline: *maxDeadline,
		Retries: *retries, BreakerThreshold: *breakerFails,
		BreakerCooldown: *breakerCooldown, Log: logger,
	})
	if err != nil {
		logger.Error("server init failed", obs.F("err", err))
		os.Exit(exitFatal)
	}

	stopDebug := cli.StartDebug(*debugAddr, logger)
	defer stopDebug()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", obs.F("addr", *addr), obs.F("err", err))
		os.Exit(exitFatal)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	// The smoke test (and operators scripting against :0) parse this line.
	cli.MustPrintf("cpsservd listening on http://%s store=%s workers=%d queue=%d\n",
		ln.Addr(), *storeDir, *workers, *queueDepth)
	logger.Info("serving", obs.F("addr", ln.Addr().String()),
		obs.F("workers", *workers), obs.F("queue", *queueDepth))

	ctx, stop := cli.SignalContext(0)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", obs.F("err", err))
			os.Exit(exitFatal)
		}
	}

	// Graceful drain: stop admitting, finish in-flight runs, sync the index,
	// then close the listener.
	logger.Info("signal received; draining", obs.F("budget", drainTimeout.String()))
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutCtx)
	if drainErr != nil {
		logger.Warn("drain incomplete", obs.F("err", drainErr))
		os.Exit(exitFatal)
	}
	logger.Info("drained cleanly")
}
