// Command cpsgen emits the six-state western-US interconnected gas-electric
// model (the paper's Figure 1 system) as JSON, for inspection or as input
// to the other tools.
//
// Usage:
//
//	cpsgen [-stress] [-o model.json] [-obs DIR] [-debug-addr ADDR]
//
// -obs writes the run's observability artifacts (events.jsonl, metrics.json,
// trace.json, manifest.json) into the directory; the manifest records the
// full flag set and the SHA-256 of the written model, so a model file can be
// traced back to the exact invocation that produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/cli"
	"cpsguard/internal/graph"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/obs"
	"cpsguard/internal/westgrid"
)

func main() {
	stress := flag.Bool("stress", false, "apply the paper's stress adjustments (capacity −25%, demand +65%)")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of JSON (render of the paper's Figure 1)")
	regions := flag.Int("regions", 0, "generate a synthetic system with this many regions instead of the six-state model")
	seed := flag.Uint64("seed", 1, "generator seed (with -regions)")
	out := flag.String("o", "", "output file (default stdout)")
	obsDir := flag.String("obs", "", "observability directory: events.jsonl plus metrics/trace/manifest at exit (see cpsreport)")
	logLevel := flag.String("log-level", "info", "stderr log verbosity: debug, info, warn, or error")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics/prom, /debug/vars and /debug/pprof on this address")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cpsgen: %v\n", err)
		os.Exit(2)
	}
	run := cli.StartRun(cli.RunOptions{Tool: "cpsgen", Seed: int64(*seed), Dir: *obsDir, StderrLevel: lvl})
	run.Manifest.CaptureFlags(flag.CommandLine)
	logger := run.Log
	fatal := func(err error) {
		logger.Error("fatal", obs.F("err", err))
		run.Close()
		os.Exit(1)
	}

	stopDebug := cli.StartDebug(*debugAddr, logger)
	defer stopDebug()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	var g *graph.Graph
	if *regions > 0 {
		var err error
		g, err = gridgen.Build(gridgen.Config{Regions: *regions, Seed: *seed, Stress: *stress})
		if err != nil {
			cli.ExitCanceled(ctx, err, "generation interrupted; no model written")
			fatal(err)
		}
	} else {
		g = westgrid.Build(westgrid.Options{Stress: *stress})
	}
	if err := ctx.Err(); err != nil {
		cli.ExitCanceled(ctx, err, "model built but not written")
	}
	var data []byte
	if *dot {
		data = []byte(g.DOT())
	} else {
		var err error
		data, err = json.MarshalIndent(g, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
	}
	if *out == "" {
		cli.MustWrite(os.Stdout, "stdout", data)
		run.Close()
		return
	}
	// Atomic write: a killed cpsgen can never leave a half-written model
	// that a downstream tool would ingest as truncated-but-valid JSON.
	if err := atomicio.MkdirAllAndWrite(*out, data, 0o644); err != nil {
		fatal(err)
	}
	run.AddOutput(*out)
	logger.Info("wrote model", obs.F("path", *out), obs.F("system", g.String()),
		obs.F("bytes", len(data)))
	if err := run.Close(); err != nil {
		os.Exit(1)
	}
}
