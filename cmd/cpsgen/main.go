// Command cpsgen emits the six-state western-US interconnected gas-electric
// model (the paper's Figure 1 system) as JSON, for inspection or as input
// to the other tools.
//
// Usage:
//
//	cpsgen [-stress] [-o model.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"cpsguard/internal/atomicio"
	"cpsguard/internal/cli"
	"cpsguard/internal/graph"
	"cpsguard/internal/gridgen"
	"cpsguard/internal/westgrid"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsgen: ")
	stress := flag.Bool("stress", false, "apply the paper's stress adjustments (capacity −25%, demand +65%)")
	dot := flag.Bool("dot", false, "emit Graphviz dot instead of JSON (render of the paper's Figure 1)")
	regions := flag.Int("regions", 0, "generate a synthetic system with this many regions instead of the six-state model")
	seed := flag.Uint64("seed", 1, "generator seed (with -regions)")
	out := flag.String("o", "", "output file (default stdout)")
	timeout := flag.Duration("timeout", 0, "abort after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()

	var g *graph.Graph
	if *regions > 0 {
		var err error
		g, err = gridgen.Build(gridgen.Config{Regions: *regions, Seed: *seed, Stress: *stress})
		if err != nil {
			cli.ExitCanceled(ctx, err, "generation interrupted; no model written")
			log.Fatal(err)
		}
	} else {
		g = westgrid.Build(westgrid.Options{Stress: *stress})
	}
	if err := ctx.Err(); err != nil {
		cli.ExitCanceled(ctx, err, "model built but not written")
	}
	var data []byte
	if *dot {
		data = []byte(g.DOT())
	} else {
		var err error
		data, err = json.MarshalIndent(g, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, '\n')
	}
	if *out == "" {
		cli.MustWrite(os.Stdout, "stdout", data)
		return
	}
	// Atomic write: a killed cpsgen can never leave a half-written model
	// that a downstream tool would ingest as truncated-but-valid JSON.
	if err := atomicio.MkdirAllAndWrite(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %s\n", *out, g)
}
